package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	_ "comb/internal/method/all"
	"comb/internal/obs"
	"comb/internal/runpipe"
	"comb/internal/spec"
)

// pollingSpecJSON is the e2e fixture: a tiny polling point on the ideal
// system, cheap enough to simulate in-process.
const pollingSpecJSON = `{
  "specVersion": 1,
  "method": "polling",
  "system": "ideal",
  "polling": {"PollInterval": 1000, "WorkTotal": 5000000}
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func postSpec(t *testing.T, base, body string) View {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, b)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func awaitJob(t *testing.T, base, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var v View
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			return v
		}
	}
	t.Fatalf("job %s never finished: %+v", id, v)
	return v
}

// TestServeEndToEnd drives the full service loop over real HTTP: submit
// a versioned spec, long-poll to completion, fetch the result, and
// verify the hash matches an independent local run of the same spec —
// the serve path and the library path are the same pipeline.
func TestServeEndToEnd(t *testing.T) {
	store := OpenStore(t.TempDir())
	jobsDir := t.TempDir()
	_, hs := newTestServer(t, Config{Workers: 2, Store: store, JobsDir: jobsDir})

	v := postSpec(t, hs.URL, pollingSpecJSON)
	if v.State.Terminal() {
		t.Fatalf("job must start queued/running, got %s", v.State)
	}
	if !strings.HasPrefix(v.Key, "polling/ideal/") {
		t.Fatalf("job key = %q", v.Key)
	}

	done := awaitJob(t, hs.URL, v.ID)
	if done.State != StateDone {
		t.Fatalf("job state = %s (error %q)", done.State, done.Error)
	}
	if done.Source != SourceRun {
		t.Errorf("first submission source = %q, want %q", done.Source, SourceRun)
	}

	// The service's hash must equal a direct in-process run of the same
	// document: one spec, one pipeline, one answer.
	var sp spec.Spec
	if err := json.Unmarshal([]byte(pollingSpecJSON), &sp); err != nil {
		t.Fatal(err)
	}
	out, err := runpipe.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if done.ResultHash == "" || done.ResultHash != out.Manifest.ResultHash {
		t.Errorf("serve hash %q != local run hash %q", done.ResultHash, out.Manifest.ResultHash)
	}

	// Result endpoint carries the envelope and the same hash.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var rr ResultResponse
	err = json.NewDecoder(resp.Body).Decode(&rr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rr.ResultHash != done.ResultHash || rr.Result == nil || rr.Result.Method != "polling" {
		t.Errorf("result response: %+v", rr)
	}

	// Manifest endpoint replays through the standard loader contract.
	resp, err = http.Get(hs.URL + "/v1/jobs/" + v.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	var mf obs.Manifest
	err = json.NewDecoder(resp.Body).Decode(&mf)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mf.ResultHash != done.ResultHash || mf.Method != "polling" {
		t.Errorf("manifest: %+v", mf)
	}

	// A repeat submission answers from the persistent store, same hash.
	v2 := postSpec(t, hs.URL, pollingSpecJSON)
	done2 := awaitJob(t, hs.URL, v2.ID)
	if done2.Source != SourceCache {
		t.Errorf("repeat submission source = %q, want %q", done2.Source, SourceCache)
	}
	if done2.ResultHash != done.ResultHash {
		t.Errorf("repeat hash %q != first hash %q", done2.ResultHash, done.ResultHash)
	}

	// Per-job artifacts landed in each job's own directory.
	for _, id := range []string{v.ID, v2.ID} {
		for _, name := range []string{"job.json", obs.ManifestFile} {
			if _, err := os.Stat(filepath.Join(jobsDir, id, name)); err != nil {
				t.Errorf("missing artifact: %v", err)
			}
		}
	}

	// The ops surface: health, version, metrics in Prometheus text form.
	if body := getText(t, hs.URL+"/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("healthz: %q", body)
	}
	if body := getText(t, hs.URL+"/v1/version"); !strings.Contains(body, `"specVersion": 3`) ||
		!strings.Contains(body, "polling") {
		t.Errorf("version: %q", body)
	}
	metrics := getText(t, hs.URL+"/metrics")
	for _, want := range []string{
		"# TYPE comb_serve_requests_total counter",
		`comb_serve_job_source_total{source="run"} 1`,
		`comb_serve_job_source_total{source="cache"} 1`,
		`comb_serve_jobs_total{state="done"} 2`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fakeOutcome builds a minimal successful Outcome for RunFunc fakes.
type fakeResult struct{ S string }

func (f fakeResult) String() string { return f.S }

func fakeOutcome(hash string) *runpipe.Outcome {
	mf := obs.NewManifest()
	mf.Method = "polling"
	mf.System = "ideal"
	mf.ResultHash = hash
	return &runpipe.Outcome{
		Value:    fakeResult{S: "fake"},
		Stats:    &runpipe.RunStats{},
		Manifest: mf,
	}
}

// TestServeSingleflight: N concurrent submissions of the identical spec
// run the engine exactly once; everyone else shares the flight and all
// responses carry the same result hash.  Run with -race this is the
// acceptance test for the dedup path.
func TestServeSingleflight(t *testing.T) {
	const n = 8
	var runs atomic.Int64
	gate := make(chan struct{})
	gatedRun := func(ctx context.Context, s spec.Spec) (*runpipe.Outcome, error) {
		runs.Add(1)
		select {
		case <-gate: // held open until every job reached the flight
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return fakeOutcome("sha256:deadbeef"), nil
	}
	srv, hs := newTestServer(t, Config{Workers: n, Run: gatedRun})

	views := make([]View, n)
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(pollingSpecJSON))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b, _ := io.ReadAll(resp.Body)
				errCh <- fmt.Errorf("HTTP %d: %s", resp.StatusCode, b)
				return
			}
			errCh <- json.NewDecoder(resp.Body).Decode(&views[i])
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	// Release the flight only after every job is executing (running and
	// either leading or parked on the shared flight), so no submission
	// can arrive late and start a second flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		running := 0
		for _, v := range srv.Jobs() {
			if v.State == StateRunning {
				running++
			}
		}
		if running == n && runs.Load() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never converged: %d running, %d runs", running, runs.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let the last workers reach the flight wait
	close(gate)

	var shared, ran int
	for i := 0; i < n; i++ {
		done := awaitJob(t, hs.URL, views[i].ID)
		if done.State != StateDone {
			t.Fatalf("job %s: %s (%s)", done.ID, done.State, done.Error)
		}
		if done.ResultHash != "sha256:deadbeef" {
			t.Errorf("job %s hash = %q", done.ID, done.ResultHash)
		}
		switch done.Source {
		case SourceRun:
			ran++
		case SourceShared:
			shared++
		default:
			t.Errorf("job %s source = %q", done.ID, done.Source)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("engine ran %d times, want 1", got)
	}
	if ran != 1 || shared != n-1 {
		t.Errorf("sources: run=%d shared=%d, want 1/%d", ran, shared, n-1)
	}

	// The metrics counter is the externally observable proof.
	metrics := getText(t, hs.URL+"/metrics")
	if !strings.Contains(metrics, `comb_serve_job_source_total{source="run"} 1`) ||
		!strings.Contains(metrics, fmt.Sprintf(`comb_serve_job_source_total{source="shared"} %d`, n-1)) {
		t.Errorf("metrics:\n%s", metrics)
	}
}

// TestServeSubmitErrors covers the API's refusal paths: wrong schema
// version, malformed specs, unknown jobs, full queues.
func TestServeSubmitErrors(t *testing.T) {
	blocked := make(chan struct{})
	t.Cleanup(func() { close(blocked) })
	stall := func(ctx context.Context, s spec.Spec) (*runpipe.Outcome, error) {
		select {
		case <-blocked:
		case <-ctx.Done():
		}
		return nil, fmt.Errorf("serve_test: stalled run released")
	}
	_, hs := newTestServer(t, Config{Workers: 1, QueueCap: 1, Run: stall})

	post := func(body string) (int, string) {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := post(`{"specVersion":99,"method":"polling"}`); code != http.StatusBadRequest ||
		!strings.Contains(body, "spec_version_unsupported") {
		t.Errorf("foreign version: %d %s", code, body)
	}
	if code, body := post(`{"method":"polling"}`); code != http.StatusBadRequest ||
		!strings.Contains(body, "spec_version_unsupported") {
		t.Errorf("missing version: %d %s", code, body)
	}
	if code, body := post(`{"specVersion":1,"method":"polling","system":"ideal"}`); code != http.StatusBadRequest ||
		!strings.Contains(body, "invalid_spec") {
		t.Errorf("config-less spec: %d %s", code, body)
	}
	if code, body := post(`not json`); code != http.StatusBadRequest || !strings.Contains(body, "bad_spec") {
		t.Errorf("malformed body: %d %s", code, body)
	}

	resp, err := http.Get(hs.URL + "/v1/jobs/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d", resp.StatusCode)
	}

	// Saturate: 1 worker stalled + 1 queue slot; distinct specs dodge the
	// singleflight so the third submission must 503.
	specFor := func(i int) string {
		return fmt.Sprintf(`{"specVersion":1,"method":"polling","system":"ideal","polling":{"PollInterval":%d,"WorkTotal":5000000}}`, 1000+i)
	}
	if code, _ := post(specFor(0)); code != http.StatusAccepted {
		t.Fatalf("first stalled submission: HTTP %d", code)
	}
	// Wait for the worker to pick it up so the queue slot is free.
	deadlineOK := false
	for i := 0; i < 100; i++ {
		if strings.Contains(getText(t, hs.URL+"/metrics"), "comb_serve_inflight_jobs 1") {
			deadlineOK = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = deadlineOK
	if code, _ := post(specFor(1)); code != http.StatusAccepted {
		t.Fatalf("queued submission: HTTP %d", code)
	}
	code, body := post(specFor(2))
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "queue_full") {
		t.Errorf("overflow submission: %d %s", code, body)
	}
	if !strings.Contains(getText(t, hs.URL+"/metrics"), "comb_serve_queue_full_total 1") {
		t.Error("queue_full metric not incremented")
	}
}

// TestServeEvents streams a job's lifecycle over SSE and requires the
// stream to end on the terminal state.
func TestServeEvents(t *testing.T) {
	release := make(chan struct{})
	gate := func(ctx context.Context, s spec.Spec) (*runpipe.Outcome, error) {
		select {
		case <-release:
			return fakeOutcome("sha256:events"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, hs := newTestServer(t, Config{Workers: 1, Run: gate})

	v := postSpec(t, hs.URL, pollingSpecJSON)
	resp, err := http.Get(hs.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	close(release)

	var states []State
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev View
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		states = append(states, ev.State)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 || states[len(states)-1] != StateDone {
		t.Fatalf("SSE states = %v, want trailing %s", states, StateDone)
	}
}

// TestServeRateLimit: the global token bucket rejects the burst+1'th
// /v1/ request with 429 but never gates /metrics.
func TestServeRateLimit(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, Rate: 0.001, Burst: 2})

	codes := make([]int, 3)
	for i := range codes {
		resp, err := http.Get(hs.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes[i] = resp.StatusCode
	}
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK || codes[2] != http.StatusTooManyRequests {
		t.Fatalf("codes = %v", codes)
	}
	metrics := getText(t, hs.URL+"/metrics")
	if !strings.Contains(metrics, "comb_serve_rate_limited_total 1") {
		t.Errorf("metrics:\n%s", metrics)
	}
}

// TestServeClientBudget: one slow request per client at a time; a
// second concurrent request from the same client bounces with 429,
// while a different client identity passes.
func TestServeClientBudget(t *testing.T) {
	release := make(chan struct{})
	gate := func(ctx context.Context, s spec.Spec) (*runpipe.Outcome, error) {
		select {
		case <-release:
			return fakeOutcome("sha256:budget"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, hs := newTestServer(t, Config{Workers: 1, Run: gate, ClientConcurrency: 1})
	defer close(release)

	v := postSpecAs(t, hs.URL, "alice", pollingSpecJSON)

	// alice parks a long-poll, occupying her single slot…
	parked := make(chan struct{})
	go func() {
		req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/jobs/"+v.ID+"?wait=3s", nil)
		req.Header.Set("X-Comb-Client", "alice")
		close(parked)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-parked
	waitForBudgetHold := func() bool {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/jobs", nil)
			req.Header.Set("X-Comb-Client", "alice")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusTooManyRequests {
				return true
			}
			time.Sleep(10 * time.Millisecond)
		}
		return false
	}
	if !waitForBudgetHold() {
		t.Error("alice's second concurrent request was never budget-rejected")
	}

	// …but bob is a different identity with his own budget.
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/jobs", nil)
	req.Header.Set("X-Comb-Client", "bob")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("bob: HTTP %d", resp.StatusCode)
	}
}

// specVariant builds a distinct valid polling spec per i, dodging both
// the singleflight and the result store.
func specVariant(i int) string {
	return fmt.Sprintf(`{"specVersion":1,"method":"polling","system":"ideal","polling":{"PollInterval":%d,"WorkTotal":5000000}}`, 1000+i)
}

// TestServeQueueFullConcurrentSubmits hammers a tiny queue with
// concurrent distinct submissions and requires the job index to stay
// coherent: exactly the accepted jobs are listed and every view
// renders.  (A positional rollback in Submit used to be able to remove
// a concurrent submission's ID instead of the rejected one, leaving a
// dangling ID that panicked the listing.)
func TestServeQueueFullConcurrentSubmits(t *testing.T) {
	stall := func(ctx context.Context, s spec.Spec) (*runpipe.Outcome, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	srv, hs := newTestServer(t, Config{Workers: 1, QueueCap: 2, Run: stall})

	const n = 24
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(specVariant(100+i)))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusAccepted:
				accepted.Add(1)
			case http.StatusServiceUnavailable:
			default:
				t.Errorf("submit %d: HTTP %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	resp, err := http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("list after churn: HTTP %d: %s", resp.StatusCode, b)
	}
	var list struct {
		Jobs []View `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if got, want := len(list.Jobs), int(accepted.Load()); got != want {
		t.Errorf("listing holds %d jobs, %d were accepted", got, want)
	}
	if got := len(srv.Jobs()); got != int(accepted.Load()) {
		t.Errorf("Jobs() holds %d, %d were accepted", got, accepted.Load())
	}
}

// TestServeRetention: finished jobs beyond RetainJobs are evicted from
// the in-memory index oldest-first — they 404 afterwards — while their
// artifacts survive on disk and live jobs are untouched.
func TestServeRetention(t *testing.T) {
	fast := func(ctx context.Context, s spec.Spec) (*runpipe.Outcome, error) {
		return fakeOutcome("sha256:retain"), nil
	}
	jobsDir := t.TempDir()
	_, hs := newTestServer(t, Config{Workers: 1, RetainJobs: 2, Run: fast, JobsDir: jobsDir})

	ids := make([]string, 4)
	for i := range ids {
		v := postSpec(t, hs.URL, specVariant(200+i))
		if done := awaitJob(t, hs.URL, v.ID); done.State != StateDone {
			t.Fatalf("job %s: %s (%s)", v.ID, done.State, done.Error)
		}
		ids[i] = v.ID
	}

	// Eviction runs just after the terminal view is published; poll
	// briefly for the index to settle at the cap.
	deadline := time.Now().Add(5 * time.Second)
	var views []View
	for {
		var list struct {
			Jobs []View `json:"jobs"`
		}
		if err := json.Unmarshal([]byte(getText(t, hs.URL+"/v1/jobs")), &list); err != nil {
			t.Fatal(err)
		}
		views = list.Jobs
		if len(views) == 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(views) != 2 || views[0].ID != ids[2] || views[1].ID != ids[3] {
		t.Fatalf("retained views = %+v, want newest two of %v", views, ids)
	}

	for _, id := range ids[:2] {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted job %s: HTTP %d, want 404", id, resp.StatusCode)
		}
		if _, err := os.Stat(filepath.Join(jobsDir, id, "job.json")); err != nil {
			t.Errorf("evicted job %s lost its artifacts: %v", id, err)
		}
	}
	if !strings.Contains(getText(t, hs.URL+"/metrics"), "comb_serve_jobs_evicted_total 2") {
		t.Error("eviction metric not incremented")
	}
}

// TestServeCloseFailsQueuedJobs: Close must drive still-queued jobs to
// a terminal failed state so long-poll watchers wake instead of hanging
// until their own timeouts.
func TestServeCloseFailsQueuedJobs(t *testing.T) {
	stall := func(ctx context.Context, s spec.Spec) (*runpipe.Outcome, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	srv := New(Config{Workers: 1, QueueCap: 4, Run: stall})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	views := make([]View, 3)
	for i := range views {
		views[i] = postSpec(t, hs.URL, specVariant(300+i))
	}

	// Park a long-poll on the last (queued) job before shutting down.
	woke := make(chan View, 1)
	parked := make(chan struct{})
	go func() {
		close(parked)
		resp, err := http.Get(hs.URL + "/v1/jobs/" + views[2].ID + "?wait=30s")
		if err != nil {
			t.Error(err)
			woke <- View{}
			return
		}
		defer resp.Body.Close()
		var v View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Error(err)
		}
		woke <- v
	}()
	<-parked
	time.Sleep(20 * time.Millisecond) // let the poll reach the handler

	start := time.Now()
	srv.Close()

	select {
	case v := <-woke:
		if !v.State.Terminal() {
			t.Errorf("watcher woke with non-terminal state %s", v.State)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll watcher never woke after Close")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("watcher woke after %s; should be immediate on Close", took)
	}
	for _, v := range srv.Jobs() {
		if v.State != StateFailed {
			t.Errorf("job %s state after Close = %s, want %s", v.ID, v.State, StateFailed)
		}
		if !strings.Contains(v.Error, context.Canceled.Error()) {
			t.Errorf("job %s error = %q, want context.Canceled", v.ID, v.Error)
		}
	}
}

// TestRouteLabel pins the bounded metric-label vocabulary: known routes
// keep their shape with IDs collapsed, everything else is "other".
func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/healthz":                  "/healthz",
		"/metrics":                  "/metrics",
		"/v1/version":               "/v1/version",
		"/v1/jobs":                  "/v1/jobs",
		"/v1/jobs/j000001":          "/v1/jobs/{id}",
		"/v1/jobs/j000001/result":   "/v1/jobs/{id}/result",
		"/v1/jobs/j000001/manifest": "/v1/jobs/{id}/manifest",
		"/v1/jobs/j000001/events":   "/v1/jobs/{id}/events",
		"/v1/jobs/":                 "other",
		"/v1/jobs/j1/unknown":       "other",
		"/v1/jobs/j1/result/extra":  "other",
		"/v1/secrets":               "other",
		"/admin":                    "other",
		"/totally/random/404/path":  "other",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestServeWaitBounds: ?wait= is clamped server-side and negatives are
// rejected, so a client cannot pin a handler goroutine indefinitely.
func TestServeWaitBounds(t *testing.T) {
	if _, err := parseWait("-5s"); err == nil {
		t.Error("negative wait accepted")
	}
	if d, err := parseWait("1000h"); err != nil || d != maxWait {
		t.Errorf("parseWait(1000h) = %v, %v; want clamp to %v", d, err, maxWait)
	}
	if d, err := parseWait("2s"); err != nil || d != 2*time.Second {
		t.Errorf("parseWait(2s) = %v, %v", d, err)
	}

	fast := func(ctx context.Context, s spec.Spec) (*runpipe.Outcome, error) {
		return fakeOutcome("sha256:wait"), nil
	}
	_, hs := newTestServer(t, Config{Workers: 1, Run: fast})
	v := postSpec(t, hs.URL, pollingSpecJSON)
	resp, err := http.Get(hs.URL + "/v1/jobs/" + v.ID + "?wait=-1s")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "bad_wait") {
		t.Errorf("negative wait: HTTP %d: %s", resp.StatusCode, b)
	}
}

func postSpecAs(t *testing.T, base, client, body string) View {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Comb-Client", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, b)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}
