package faultinject

import (
	"reflect"
	"strings"
	"testing"

	"comb/internal/cluster"
	"comb/internal/sim"
	"comb/internal/transport"
)

func TestParseStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"seed=0",
		"drop=0.01,seed=7",
		"drop=0.01,dup=0.02,reorder=0.05,delay=0.2:50µs,jitter=0.1:200µs,seed=9",
		"delay=0.5:10µs,seed=3",
		"jitter=1:1ms,seed=12345",
	} {
		s, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", in, s.String(), err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("round trip of %q: %+v != %+v (via %q)", in, s, back, s.String())
		}
	}
}

func TestParseDefaults(t *testing.T) {
	s, err := Parse("delay=0.2,jitter=0.1,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if s.DelayMax != DefaultDelayMax {
		t.Errorf("DelayMax = %v, want default %v", s.DelayMax, DefaultDelayMax)
	}
	if s.JitterBurst != DefaultJitterBurst {
		t.Errorf("JitterBurst = %v, want default %v", s.JitterBurst, DefaultJitterBurst)
	}
	if s.Zero() {
		t.Error("spec with probabilities reads as Zero")
	}
	if z, err := Parse(""); err != nil || !z.Zero() {
		t.Errorf("Parse(\"\") = %+v, %v; want zero spec", z, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"nonsense",
		"frobnicate=0.5",
		"drop=high",
		"drop=1.5",
		"drop=-0.1",
		"delay=0.2:fast",
		"seed=-1",
		"seed=abc",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted garbage", in)
		}
	}
}

func TestMaskedPerTolerance(t *testing.T) {
	full := Spec{Drop: 0.1, Dup: 0.1, Reorder: 0.1, DelayProb: 0.1, JitterProb: 0.1}
	cases := []struct {
		system  string
		removed []string
	}{
		{"gm", []string{"drop", "dup", "reorder"}},
		{"portals", []string{"drop", "dup"}},
		{"emp", []string{"drop", "dup"}},
		{"tcp", nil},
	}
	for _, tc := range cases {
		got, removed := full.Masked(transport.ToleranceOf(tc.system))
		if !reflect.DeepEqual(removed, tc.removed) {
			t.Errorf("%s: masked %v, want %v", tc.system, removed, tc.removed)
		}
		// Delay and jitter survive every mask: all transports tolerate
		// in-order slowness.
		if got.DelayProb != full.DelayProb || got.JitterProb != full.JitterProb {
			t.Errorf("%s: mask touched delay/jitter: %+v", tc.system, got)
		}
	}
}

func TestWrapMasksAndPreservesLink(t *testing.T) {
	spec := Spec{Drop: 0.1, Reorder: 0.1, DelayProb: 0.1, Seed: 5}

	gm, err := transport.ByName("gm")
	if err != nil {
		t.Fatal(err)
	}
	w := Wrap(gm, spec)
	if w.Name() != "gm+faults" {
		t.Errorf("Name = %q", w.Name())
	}
	ft, ok := Unwrap(w)
	if !ok {
		t.Fatal("Unwrap failed on wrapped gm")
	}
	if got := ft.MaskedFaults(); !reflect.DeepEqual(got, []string{"drop", "reorder"}) {
		t.Errorf("gm masked %v, want [drop reorder]", got)
	}
	if ft.Spec().DelayProb != spec.DelayProb {
		t.Errorf("delay lost in wrap: %+v", ft.Spec())
	}
	if _, isLP := w.(transport.LinkPreferencer); isLP {
		t.Error("wrapped gm grew a PreferredLink it never had")
	}

	tcp, err := transport.ByName("tcp")
	if err != nil {
		t.Fatal(err)
	}
	wt := Wrap(tcp, spec)
	lp, isLP := wt.(transport.LinkPreferencer)
	if !isLP {
		t.Fatal("wrapped tcp lost its LinkPreferencer — it would run on the wrong wire")
	}
	want, wantHdr := tcp.(transport.LinkPreferencer).PreferredLink()
	got, gotHdr := lp.PreferredLink()
	if got != want || gotHdr != wantHdr {
		t.Errorf("PreferredLink changed under wrap: %+v/%d != %+v/%d", got, gotHdr, want, wantHdr)
	}
	ft, ok = Unwrap(wt)
	if !ok {
		t.Fatal("Unwrap failed on wrapped tcp")
	}
	if len(ft.MaskedFaults()) != 0 {
		t.Errorf("tcp masked %v, want nothing", ft.MaskedFaults())
	}
}

// deliverSeq drives one injector over n synthetic same-pair packets and
// records every delivery time.
func deliverSeq(spec Spec, n int) ([][]sim.Time, *Stats) {
	st := &Stats{}
	in := &injector{spec: spec, rng: sim.NewRand(spec.Seed), last: make(map[pair]sim.Time), stats: st}
	out := make([][]sim.Time, n)
	at := sim.Time(0)
	for i := range out {
		at += 100 // natural wire spacing
		out[i] = in.Deliver(&cluster.Packet{From: 0, To: 1, Size: 4096}, at)
	}
	return out, st
}

func TestInjectorDeterminism(t *testing.T) {
	spec := Spec{Seed: 99, Drop: 0.1, Dup: 0.1, Reorder: 0.2, DelayProb: 0.5, DelayMax: 10 * sim.Microsecond}
	a, sa := deliverSeq(spec, 500)
	b, sb := deliverSeq(spec, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different delivery schedules")
	}
	if *sa != *sb {
		t.Fatalf("same seed produced different stats: %+v vs %+v", *sa, *sb)
	}
	if sa.Delayed == 0 || sa.Reordered == 0 {
		t.Errorf("500 packets at these probabilities hit no faults: %+v", *sa)
	}
	spec.Seed = 100
	c, _ := deliverSeq(spec, 500)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestInjectorDelayKeepsFIFO(t *testing.T) {
	// Delay without reorder must preserve per-pair delivery order: GM's
	// eager fragments panic if one overtakes another.
	spec := Spec{Seed: 7, DelayProb: 0.8, DelayMax: 50 * sim.Microsecond}
	seq, st := deliverSeq(spec, 1000)
	var prev sim.Time = -1
	for i, whens := range seq {
		if len(whens) != 1 {
			t.Fatalf("packet %d: %d deliveries without drop/dup configured", i, len(whens))
		}
		if whens[0] < prev {
			t.Fatalf("packet %d delivered at %v, before predecessor at %v", i, whens[0], prev)
		}
		prev = whens[0]
	}
	if st.Delayed < 500 {
		t.Errorf("only %d of 1000 packets delayed at p=0.8", st.Delayed)
	}
}

func TestInjectorDropAndDup(t *testing.T) {
	spec := Spec{Seed: 3, Drop: 0.3, Dup: 0.3, DelayMax: sim.Microsecond}
	seq, _ := deliverSeq(spec, 1000)
	var drops, dups int
	for _, whens := range seq {
		switch len(whens) {
		case 0:
			drops++
		case 2:
			dups++
		}
	}
	if drops == 0 || dups == 0 {
		t.Fatalf("1000 packets at p=0.3: %d drops, %d dups", drops, dups)
	}
	// Loose binomial sanity bounds (deterministic, so no flake risk).
	if drops < 200 || drops > 400 || dups < 130 || dups > 330 {
		t.Errorf("fault rates far from configured probabilities: %d drops, %d dups", drops, dups)
	}
}

func TestInjectorNeverDeliversEarly(t *testing.T) {
	spec := Spec{Seed: 11, Dup: 0.2, Reorder: 0.3, DelayProb: 0.3, DelayMax: 20 * sim.Microsecond}
	st := &Stats{}
	in := &injector{spec: spec, rng: sim.NewRand(spec.Seed), last: make(map[pair]sim.Time), stats: st}
	for i := 0; i < 1000; i++ {
		at := sim.Time(100 * (i + 1))
		for _, w := range in.Deliver(&cluster.Packet{From: i % 3, To: 1, Size: 2048}, at) {
			if w < at {
				t.Fatalf("packet %d scheduled at %v, before its natural arrival %v (fabric would panic)", i, w, at)
			}
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	for _, s := range []Spec{
		{Drop: 1.2},
		{Dup: -0.5},
		{JitterProb: 2},
		{DelayMax: -1},
		{JitterBurst: -1},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", s)
		}
	}
	if err := (Spec{Drop: 1, Dup: 0.5}).Validate(); err != nil {
		t.Errorf("Validate rejected a legal spec: %v", err)
	}
}

func TestStringMentionsOnlyActiveFaults(t *testing.T) {
	s := Spec{Drop: 0.25, Seed: 17}
	str := s.String()
	if !strings.Contains(str, "drop=0.25") || !strings.Contains(str, "seed=17") {
		t.Errorf("String() = %q", str)
	}
	for _, absent := range []string{"dup", "reorder", "delay", "jitter"} {
		if strings.Contains(str, absent) {
			t.Errorf("String() mentions inactive fault %s: %q", absent, str)
		}
	}
}
