package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"comb/internal/sim"
)

// Spec describes one fault-injection configuration.  The zero Spec
// injects nothing.
type Spec struct {
	// Seed seeds the injection generator (0 is a valid seed).
	Seed uint64
	// Drop is the per-packet probability of silently discarding it after
	// it consumed wire time.
	Drop float64
	// Dup is the per-packet probability of delivering a second copy.
	Dup float64
	// Reorder is the per-packet probability of holding the packet back so
	// later packets from the same sender overtake it.
	Reorder float64
	// DelayProb is the per-packet probability of an extra in-order
	// delivery delay, uniform in (0, DelayMax].
	DelayProb float64
	// DelayMax bounds the extra delay (also used as the hold-back bound
	// for reordering).  Defaults to 10us when a delay or reorder
	// probability is set without it.
	DelayMax sim.Time
	// JitterProb is the per-bulk-packet probability of a CPU jitter burst
	// on the receiving node: JitterBurst of interrupt-priority CPU time
	// stealing cycles from the benchmark, modeling OS noise correlated
	// with network activity.
	JitterProb float64
	// JitterBurst is the burst length (default 50us when JitterProb is
	// set without it).
	JitterBurst sim.Time
}

// Default fault magnitudes applied when a probability is set without its
// companion bound.
const (
	DefaultDelayMax    = 10 * sim.Microsecond
	DefaultJitterBurst = 50 * sim.Microsecond
)

// Zero reports whether the spec injects nothing.
func (s Spec) Zero() bool {
	return s.Drop == 0 && s.Dup == 0 && s.Reorder == 0 && s.DelayProb == 0 && s.JitterProb == 0
}

// WireOnly reports whether the spec perturbs only the wire (drop,
// duplication, reorder, delay) and never the host CPU.  Jitter bursts
// steal benchmark cycles, which also inflates a method's dry-run
// calibration — so cross-run relations that compare a faulted run's
// availability against its clean twin only hold for wire-only specs
// (see internal/scenario).
func (s Spec) WireOnly() bool { return s.JitterProb == 0 }

// withDefaults returns s with unset magnitude bounds filled in.
func (s Spec) withDefaults() Spec {
	if (s.DelayProb > 0 || s.Reorder > 0) && s.DelayMax <= 0 {
		s.DelayMax = DefaultDelayMax
	}
	if s.JitterProb > 0 && s.JitterBurst <= 0 {
		s.JitterBurst = DefaultJitterBurst
	}
	return s
}

// Validate checks probability ranges and magnitude signs.
func (s Spec) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"drop", s.Drop}, {"dup", s.Dup}, {"reorder", s.Reorder},
		{"delay", s.DelayProb}, {"jitter", s.JitterProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultinject: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if s.DelayMax < 0 {
		return fmt.Errorf("faultinject: negative delay bound %v", s.DelayMax)
	}
	if s.JitterBurst < 0 {
		return fmt.Errorf("faultinject: negative jitter burst %v", s.JitterBurst)
	}
	return nil
}

// String renders the spec in the form Parse accepts, suitable for replay
// instructions in failure messages.
func (s Spec) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	add("drop", s.Drop)
	add("dup", s.Dup)
	add("reorder", s.Reorder)
	if s.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%v:%v", s.DelayProb, s.DelayMax))
	}
	if s.JitterProb > 0 {
		parts = append(parts, fmt.Sprintf("jitter=%v:%v", s.JitterProb, s.JitterBurst))
	}
	parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	return strings.Join(parts, ",")
}

// Parse reads a comma-separated fault spec, e.g.
//
//	drop=0.01,dup=0.01,reorder=0.05,delay=0.2:50us,jitter=0.1:200us,seed=7
//
// Probabilities are in [0,1]; durations use Go syntax (ns/us/ms/s).  The
// delay and jitter values take an optional ":duration" magnitude.
func Parse(in string) (Spec, error) {
	var s Spec
	in = strings.TrimSpace(in)
	if in == "" {
		return s, nil
	}
	for _, field := range strings.Split(in, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return s, fmt.Errorf("faultinject: bad field %q (want key=value)", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return s, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			s.Seed = n
		case "drop", "dup", "reorder":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return s, fmt.Errorf("faultinject: bad %s probability %q: %v", k, v, err)
			}
			switch k {
			case "drop":
				s.Drop = p
			case "dup":
				s.Dup = p
			case "reorder":
				s.Reorder = p
			}
		case "delay", "jitter":
			pstr, dstr, hasDur := strings.Cut(v, ":")
			p, err := strconv.ParseFloat(pstr, 64)
			if err != nil {
				return s, fmt.Errorf("faultinject: bad %s probability %q: %v", k, pstr, err)
			}
			var dur sim.Time
			if hasDur {
				d, err := time.ParseDuration(dstr)
				if err != nil {
					return s, fmt.Errorf("faultinject: bad %s duration %q: %v", k, dstr, err)
				}
				dur = sim.Time(d.Nanoseconds())
			}
			if k == "delay" {
				s.DelayProb, s.DelayMax = p, dur
			} else {
				s.JitterProb, s.JitterBurst = p, dur
			}
		default:
			return s, fmt.Errorf("faultinject: unknown fault %q (have drop, dup, reorder, delay, jitter, seed)", k)
		}
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// maskNames lists fault kinds by the spec fields they zero, for mask
// reporting.
func maskNames(removed map[string]bool) []string {
	var ns []string
	for n := range removed {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}
