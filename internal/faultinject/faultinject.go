package faultinject

import (
	"comb/internal/cluster"
	"comb/internal/mpi"
	"comb/internal/sim"
	"comb/internal/transport"
)

// bulkThreshold is the wire size above which a packet counts as bulk
// data for jitter triggering.  Control traffic (barrier bytes, RTS/CTS,
// ACKs) stays below it, so jitter bursts land only while payload is
// moving — the dry-run calibration phases see no bursts and
// availability stays a well-defined ratio.
const bulkThreshold = 1024

// Masked returns s with the faults tol cannot survive zeroed, plus the
// sorted names of the removed faults.
func (s Spec) Masked(tol transport.Tolerance) (Spec, []string) {
	removed := map[string]bool{}
	if s.Drop > 0 && !tol.Loss {
		s.Drop = 0
		removed["drop"] = true
	}
	if s.Dup > 0 && !tol.Duplication {
		s.Dup = 0
		removed["dup"] = true
	}
	if s.Reorder > 0 && !tol.Reorder {
		s.Reorder = 0
		removed["reorder"] = true
	}
	return s, maskNames(removed)
}

// Stats counts what the injector actually did during a run.  Drops and
// duplicates are accounted by the fabric (cluster.Fabric.InjectStats) so
// conservation checks stay exact; these are the injector-side extras.
type Stats struct {
	Delayed      int64 // packets given an in-order extra delay
	Reordered    int64 // packets held back past their followers
	JitterBursts int64 // CPU bursts submitted
}

// Transport wraps an inner transport with fault injection.  It
// implements transport.Transport; use Wrap (not a literal) so the
// LinkPreferencer extension of the inner transport is preserved.
type Transport struct {
	inner  transport.Transport
	spec   Spec // effective spec, post tolerance masking
	masked []string
	inj    *injector
	stats  *Stats
}

// Wrap returns inner wrapped with the given fault spec.  Faults the
// transport cannot survive (per transport.ToleranceOf) are masked off;
// MaskedFaults reports which.  The returned transport reads
// "<inner>+faults" in registries and results.
func Wrap(inner transport.Transport, spec Spec) transport.Transport {
	spec = spec.withDefaults()
	eff, masked := spec.Masked(transport.ToleranceOf(inner.Name()))
	t := &Transport{inner: inner, spec: eff, masked: masked, stats: &Stats{}}
	if _, ok := inner.(transport.LinkPreferencer); ok {
		return &linkedTransport{t}
	}
	return t
}

// Unwrap returns the fault wrapper inside tr, if tr came from Wrap.
func Unwrap(tr transport.Transport) (*Transport, bool) {
	switch v := tr.(type) {
	case *Transport:
		return v, true
	case *linkedTransport:
		return v.Transport, true
	}
	return nil, false
}

// linkedTransport adds the LinkPreferencer forward for inner transports
// that bring their own wire (TCP, EMP on Ethernet).
type linkedTransport struct{ *Transport }

func (l *linkedTransport) PreferredLink() (cluster.LinkConfig, int) {
	return l.inner.(transport.LinkPreferencer).PreferredLink()
}

// Name returns the inner transport's name tagged with "+faults".
func (t *Transport) Name() string { return t.inner.Name() + "+faults" }

// Offload reports the inner transport's offload capability.
func (t *Transport) Offload() bool { return t.inner.Offload() }

// InjectsFaults implements transport.FaultMarker: the platform layer must
// use the serial engine, because injected deliveries reorder across
// partition boundaries.
func (t *Transport) InjectsFaults() bool { return true }

// Inner returns the wrapped transport.
func (t *Transport) Inner() transport.Transport { return t.inner }

// Spec returns the effective (post-masking) fault spec.
func (t *Transport) Spec() Spec { return t.spec }

// MaskedFaults lists fault kinds removed because the inner transport
// cannot survive them.
func (t *Transport) MaskedFaults() []string { return t.masked }

// Stats returns the injector's counters for the most recent Build's
// system.
func (t *Transport) Stats() Stats { return *t.stats }

// Build attaches the inner transport's endpoints, then installs the
// packet injector and the jitter observer on the system's fabric.
func (t *Transport) Build(sys *cluster.System) []mpi.Endpoint {
	eps := t.inner.Build(sys)
	*t.stats = Stats{}
	if t.spec.Drop > 0 || t.spec.Dup > 0 || t.spec.Reorder > 0 || t.spec.DelayProb > 0 {
		t.inj = &injector{
			spec:  t.spec,
			rng:   sim.NewRand(t.spec.Seed),
			last:  make(map[pair]sim.Time),
			stats: t.stats,
		}
		sys.Fabric.SetInjector(t.inj)
	}
	if t.spec.JitterProb > 0 && t.spec.JitterBurst > 0 {
		jrng := sim.NewRand(t.spec.Seed ^ 0x6a17_7e2b_5eed_ca5e)
		prob, burst, stats := t.spec.JitterProb, t.spec.JitterBurst, t.stats
		sys.Fabric.Observe(func(pkt *cluster.Packet, _ sim.Time) {
			if pkt.Size < bulkThreshold || jrng.Float64() >= prob {
				return
			}
			stats.JitterBursts++
			sys.Nodes[pkt.To].CPU.SubmitCall(burst, cluster.Interrupt, nil, nil)
		})
	}
	return eps
}

// pair keys per-(sender,receiver) FIFO state.
type pair struct{ from, to int }

// injector implements cluster.Injector: it decides each packet's fate at
// delivery-scheduling time, deterministically from the spec's seed.
type injector struct {
	spec  Spec
	rng   *sim.Rand
	last  map[pair]sim.Time // delivery-time clamp preserving per-pair FIFO
	stats *Stats
}

// Deliver returns the times at which copies of pkt reach the receiver.
// Clean and delayed deliveries are clamped to the pair's previous
// delivery time so fragments never overtake each other (GM's eager
// protocol relies on the wire's FIFO guarantee); a reorder fault skips
// the clamp update so followers pass the held-back packet.
func (in *injector) Deliver(pkt *cluster.Packet, at sim.Time) []sim.Time {
	s := &in.spec
	if s.Drop > 0 && in.rng.Float64() < s.Drop {
		return nil
	}
	w := at
	if s.DelayProb > 0 && in.rng.Float64() < s.DelayProb {
		w += in.randDur(s.DelayMax)
		in.stats.Delayed++
	}
	key := pair{pkt.From, pkt.To}
	if s.Reorder > 0 && in.rng.Float64() < s.Reorder {
		w += in.randDur(s.DelayMax)
		in.stats.Reordered++
	} else {
		if last := in.last[key]; w < last {
			w = last
		}
		in.last[key] = w
	}
	out := []sim.Time{w}
	if s.Dup > 0 && in.rng.Float64() < s.Dup {
		out = append(out, w+in.randDur(s.DelayMax))
	}
	return out
}

// randDur draws a uniform duration in [1, max].
func (in *injector) randDur(max sim.Time) sim.Time {
	if max <= 0 {
		max = DefaultDelayMax
	}
	return sim.Time(in.rng.Uint64()%uint64(max)) + 1
}
