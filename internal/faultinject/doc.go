// Package faultinject wraps a transport with deterministic wire and CPU
// fault injection: packet drop, duplication, delay, reordering, and CPU
// jitter bursts, all drawn from a seeded generator so every degraded run
// is replayable from its spec string.
//
// Faults a transport cannot survive (per transport.ToleranceOf) are
// masked off at wrap time: GM's eager protocol panics on reordered
// fragments and the byte-count transports (Portals, EMP) deadlock on
// loss or duplication, and a fault harness that can only report
// "simulator hung" teaches nothing.  The mask is reported so callers can
// tell the user which knobs were ignored.
package faultinject
