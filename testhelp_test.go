package comb

import "context"

// runPolling and runPWW are test shorthands for the facade's single
// entry point (the deprecated RunPolling*/RunPWW* wrappers are gone).

func runPolling(system string, cpus int, cfg PollingConfig) (*RunResult, error) {
	return Run(context.Background(), RunSpec{Method: MethodPolling, System: system, CPUs: cpus, Polling: &cfg})
}

func runPWW(system string, cpus int, cfg PWWConfig) (*RunResult, error) {
	return Run(context.Background(), RunSpec{Method: MethodPWW, System: system, CPUs: cpus, PWW: &cfg})
}
