// Halo runs the application pattern that motivates overlap benchmarks: a
// 1-D domain decomposition exchanging halo regions with neighbours every
// iteration, plus a global residual Allreduce — the skeleton of every
// iterative stencil solver.  Each system runs two schedules —
//
//	no-overlap: post halo exchange, wait, then compute everything
//	overlap:    post halo exchange, compute the interior, wait, then
//	            compute the boundary
//
// — and the speedup (or lack of it) shows exactly what COMB predicts:
// overlap only pays on systems with application offload, and its benefit
// is eroded by host-side communication overhead.
//
// Run with: go run ./examples/halo
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"comb/internal/mpi"
	"comb/internal/platform"
	"comb/internal/sim"
)

const (
	ranks         = 4
	haloBytes     = 100_000   // one face of ghost cells
	interiorIters = 4_000_000 // ~8 ms of interior stencil work
	boundaryIters = 400_000   // ~0.8 ms of boundary stencil work
	iterations    = 20
	tag           = 1
)

// neighbours returns the left/right peers of a rank in a non-periodic
// 1-D decomposition (-1 at the edges).
func neighbours(rank, size int) (left, right int) {
	left, right = rank-1, rank+1
	if right >= size {
		right = -1
	}
	return left, right
}

// exchange posts non-blocking halo receives and sends with both
// neighbours and returns the requests.
func exchange(p *sim.Proc, c *mpi.Comm, bufs [][]byte, payload []byte) []*mpi.Request {
	left, right := neighbours(c.Rank(), c.Size())
	var reqs []*mpi.Request
	for i, nb := range []int{left, right} {
		if nb < 0 {
			continue
		}
		reqs = append(reqs, c.Irecv(p, nb, tag, bufs[i]))
	}
	for _, nb := range []int{left, right} {
		if nb < 0 {
			continue
		}
		reqs = append(reqs, c.Isend(p, nb, tag, payload))
	}
	return reqs
}

// sumCombine adds little-endian uint64 residual contributions.
func sumCombine(acc, contribution []byte) {
	a := binary.LittleEndian.Uint64(acc)
	b := binary.LittleEndian.Uint64(contribution)
	binary.LittleEndian.PutUint64(acc, a+b)
}

// run executes the stencil loop; overlap selects the schedule.  It
// returns rank 0's elapsed time and the final global residual.
func run(system string, overlap bool) (time.Duration, uint64, error) {
	in, err := platform.New(platform.Config{Transport: system, Nodes: ranks})
	if err != nil {
		return 0, 0, err
	}
	defer in.Close()
	var elapsed sim.Time
	var residual uint64
	err = in.Run(func(p *sim.Proc, c *mpi.Comm) {
		node := in.Sys.Nodes[c.Rank()]
		bufs := [][]byte{make([]byte, haloBytes), make([]byte, haloBytes)}
		payload := make([]byte, haloBytes)
		res := make([]byte, 8)
		c.Barrier(p)
		start := p.Now()
		for it := 0; it < iterations; it++ {
			reqs := exchange(p, c, bufs, payload)
			if overlap {
				node.Work(p, interiorIters) // interior needs no ghost cells
				c.Waitall(p, reqs)
				node.Work(p, boundaryIters) // boundary waits for the halos
			} else {
				c.Waitall(p, reqs)
				node.Work(p, interiorIters+boundaryIters)
			}
			// Global convergence check: each rank contributes its local
			// residual; everyone learns the sum.
			binary.LittleEndian.PutUint64(res, uint64(c.Rank()+it))
			c.Allreduce(p, res, sumCombine)
		}
		c.Barrier(p)
		if c.Rank() == 0 {
			elapsed = p.Now() - start
			residual = binary.LittleEndian.Uint64(res)
		}
	})
	return time.Duration(elapsed), residual, err
}

func main() {
	fmt.Printf("1-D halo exchange + Allreduce, %d ranks, %d KB halos, %d iterations\n\n",
		ranks, haloBytes/1000, iterations)
	fmt.Printf("%-10s %14s %14s %10s\n", "system", "no-overlap", "overlap", "speedup")
	var checkResidual uint64
	for _, system := range []string{"gm", "portals", "emp", "tcp", "ideal"} {
		blocking, res1, err := run(system, false)
		if err != nil {
			log.Fatal(err)
		}
		overlapped, res2, err := run(system, true)
		if err != nil {
			log.Fatal(err)
		}
		if res1 != res2 {
			log.Fatalf("%s: schedules disagree on the residual (%d vs %d)", system, res1, res2)
		}
		checkResidual = res1
		fmt.Printf("%-10s %14v %14v %9.2fx\n",
			system,
			blocking.Round(10*time.Microsecond),
			overlapped.Round(10*time.Microsecond),
			float64(blocking)/float64(overlapped))
	}
	fmt.Printf("\n(all systems converge to the same residual: %d)\n\n", checkResidual)
	fmt.Println("COMB's measurements predict exactly this table:")
	fmt.Println(" * ideal and emp overlap fully — their wire time hides behind the")
	fmt.Println("   interior compute (low overhead + application offload).")
	fmt.Println(" * gm gains nothing: rendezvous halos only move inside MPI calls")
	fmt.Println("   (no application offload, COMB Fig 11).")
	fmt.Println(" * portals gains nothing either, for the other reason: its")
	fmt.Println("   progress is offloaded but its cost is host CPU (interrupts and")
	fmt.Println("   kernel copies, COMB Fig 12) — overlap cannot hide cycles the")
	fmt.Println("   compute phase itself has to give up.")
	fmt.Println(" * tcp gains: its slow wire is the bottleneck and the kernel")
	fmt.Println("   buffers bytes during the compute phase, leaving only the")
	fmt.Println("   socket-drain copies in the wait.")
}
