// Netperfvscomb reproduces the paper's §5 argument against netperf-style
// CPU-availability measurement for MPI systems: it runs the netperf
// two-processes-on-one-node measurement in both waiting modes next to
// COMB's single-process polling measurement, on identical simulated
// hardware.
//
// Run with: go run ./examples/netperfvscomb
package main

import (
	"context"
	"fmt"
	"log"

	"comb"
	"comb/internal/netperf"
)

func main() {
	const (
		size      = 100_000
		loopIters = 25_000_000
	)
	fmt.Println("CPU availability during communication: netperf vs COMB")
	fmt.Println()
	fmt.Printf("%-10s %18s %18s %14s\n",
		"system", "netperf(select)", "netperf(busywait)", "COMB polling")
	for _, system := range []string{"gm", "portals"} {
		sel, err := netperf.Run(system, netperf.SelectWait, size, loopIters)
		if err != nil {
			log.Fatal(err)
		}
		busy, err := netperf.Run(system, netperf.BusyWait, size, loopIters)
		if err != nil {
			log.Fatal(err)
		}
		out, err := comb.Run(context.Background(), comb.RunSpec{
			Method: comb.MethodPolling,
			System: system,
			Polling: &comb.PollingConfig{
				Config:       comb.Config{MsgSize: size},
				PollInterval: 100_000,
				WorkTotal:    loopIters,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %18.3f %18.3f %14.3f\n",
			system, sel.Availability, busy.Availability, out.Polling.Availability)
	}
	fmt.Println()
	fmt.Println("GM really leaves the host ~fully available (COMB ~1.0), but a")
	fmt.Println("busy-waiting MPI process makes netperf report ~0.5 — the waiter")
	fmt.Println("never relinquishes the CPU the way netperf's select-based design")
	fmt.Println("assumes.  COMB avoids both problems by running one process per")
	fmt.Println("node and folding the polling into that process's own work loop.")
}
