// Realtime runs the unmodified COMB core on real goroutines and the wall
// clock (internal/rtm) instead of the simulator — the paper's portability
// claim in action, with this Go process as the system under test.  The
// two progress modes recreate the paper's dichotomy in shared memory: an
// offloaded progress goroutine versus library-call-driven delivery.
//
// Numbers vary run to run (this is a live machine); the signature to look
// for is the wait-per-message difference between the modes at a long work
// interval.
//
// Run with: go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"comb/internal/core"
	"comb/internal/rtm"
)

func run(mode rtm.Mode) (*core.PWWResult, error) {
	w := rtm.NewWorld(2, mode)
	var res *core.PWWResult
	var ferr error
	w.Run(func(m core.Machine) {
		r, err := core.RunPWW(m, core.PWWConfig{
			Config:       core.Config{MsgSize: 1 << 20}, // 1 MiB: copies take real time
			WorkInterval: 30_000_000,                    // tens of ms of real spinning
			Reps:         8,
			BatchSize:    2,
		})
		if err != nil {
			ferr = err
			return
		}
		if r != nil {
			res = r
		}
	})
	if ferr != nil {
		return nil, ferr
	}
	return res, nil
}

func main() {
	fmt.Printf("COMB post-work-wait on the live Go runtime (GOMAXPROCS=%d)\n",
		runtime.GOMAXPROCS(0))
	fmt.Printf("work-loop calibration: ~%v per iteration (paper's machine: 2ns)\n\n",
		rtm.Calibrate())
	fmt.Printf("%-10s %14s %14s %14s %12s\n",
		"mode", "bandwidth", "wait/msg", "work w/ MH", "availability")
	for _, mode := range []rtm.Mode{rtm.Offload, rtm.Library} {
		res, err := run(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %11.1f MB/s %14v %14v %12.3f\n",
			mode, res.BandwidthMBs,
			res.AvgWait.Round(time.Microsecond),
			res.AvgWorkMH.Round(time.Microsecond),
			res.Availability)
	}
	fmt.Println()
	fmt.Println("In offload mode a progress goroutine delivers messages while the")
	fmt.Println("worker spins, so the wait phase shrinks (given spare cores).  In")
	fmt.Println("library mode delivery happens only inside MPI calls — the work")
	fmt.Println("phase blocks all progress and the wait phase pays for the whole")
	fmt.Println("copy, exactly the GM signature from the paper's Figure 11.")
}
