// Quickstart: run both COMB methods on the two systems the paper compares
// and print the headline numbers — sustained bandwidth, CPU availability,
// and the per-phase timings that reveal application offload.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"comb"
)

func main() {
	fmt.Println("COMB quickstart: Communication Offload MPI-based Benchmark")
	fmt.Println("two simulated systems, one 100 KB workload")
	fmt.Println()

	for _, system := range []string{"gm", "portals"} {
		fmt.Printf("=== %s ===\n", system)

		// Polling method: maximum achievable overlap.
		pollRes, err := comb.Run(context.Background(), comb.RunSpec{
			Method: comb.MethodPolling,
			System: system,
			Polling: &comb.PollingConfig{
				Config:       comb.Config{MsgSize: 100_000},
				PollInterval: 100_000,    // iterations between completion polls
				WorkTotal:    25_000_000, // ~50 ms of work on the 500 MHz model
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		poll := pollRes.Polling
		fmt.Printf("  polling:  %6.2f MB/s sustained at %.3f CPU availability\n",
			poll.BandwidthMBs, poll.Availability)

		// Post-work-wait method: overlap under the no-MPI-calls-during-
		// work restriction real applications live with.
		pwwRes, err := comb.Run(context.Background(), comb.RunSpec{
			Method: comb.MethodPWW,
			System: system,
			PWW: &comb.PWWConfig{
				Config:       comb.Config{MsgSize: 100_000},
				WorkInterval: 10_000_000, // ~20 ms work phase
				Reps:         10,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		pww := pwwRes.PWW
		fmt.Printf("  pww:      post %v/msg, work overhead %.1f%%, wait %v/msg\n",
			pww.AvgPostRecv, pww.WorkOverhead*100, pww.AvgWait)

		// The paper's §4.1 diagnosis, from the PWW signature.
		switch {
		case pww.AvgWait < pww.AvgWorkOnly/100 && pww.WorkOverhead < 0.02:
			fmt.Println("  verdict:  application offload, no host overhead")
		case pww.AvgWait < pww.AvgWorkOnly/100:
			fmt.Println("  verdict:  application offload, but communication steals host CPU")
		case pww.WorkOverhead < 0.02:
			fmt.Println("  verdict:  no application offload (messages wait for MPI calls); host otherwise idle")
		default:
			fmt.Println("  verdict:  no application offload and host overhead")
		}
		fmt.Println()
	}

	fmt.Println("Interpretation (matches the paper's Figures 8-13): GM moves data")
	fmt.Println("faster and steals no CPU, but only progresses inside MPI calls;")
	fmt.Println("Portals progresses autonomously at the price of interrupts and")
	fmt.Println("kernel copies on every packet.")
}
