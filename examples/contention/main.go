// Contention scales COMB beyond the paper's two nodes: several
// worker/support pairs run the polling method simultaneously through one
// switch with finite aggregate (backplane) capacity — a step toward the
// large DOE machines the paper's §7 wanted to benchmark next.
//
// With a non-blocking crossbar every pair keeps its full bandwidth; with
// a finite backplane the pairs share it, and COMB measures each pair's
// slice — while per-pair CPU availability stays put, because waiting on a
// contended switch costs wire time, not host cycles.
//
// Run with: go run ./examples/contention
package main

import (
	"fmt"
	"log"
	"sync"

	"comb/internal/cluster"
	"comb/internal/core"
	"comb/internal/machine"
	"comb/internal/platform"
)

// measure runs COMB's polling method on every pair of a 2*pairs-node
// cluster and returns each pair's bandwidth and availability.
func measure(pairs int, backplane float64) ([]float64, []float64, error) {
	p := cluster.PlatformPIII500()
	p.Link.BackplaneBandwidth = backplane
	var mu sync.Mutex
	var bws, avails []float64
	err := machine.Run(platform.Config{
		Transport: "gm",
		Nodes:     2 * pairs,
		Platform:  &p,
	}, func(m core.Machine) {
		res, err := core.RunPolling(machine.PairView{M: m}, core.PollingConfig{
			Config:       core.Config{MsgSize: 100_000},
			PollInterval: 10_000,
			WorkTotal:    25_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res != nil {
			mu.Lock()
			bws = append(bws, res.BandwidthMBs)
			avails = append(avails, res.Availability)
			mu.Unlock()
		}
	})
	return bws, avails, err
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func main() {
	const backplane = 250 * cluster.MB
	fmt.Println("COMB polling method, GM, concurrent pairs through one switch")
	fmt.Printf("backplane capacity: %.0f MB/s aggregate\n\n", backplane/cluster.MB)
	fmt.Printf("%6s %22s %22s %14s\n",
		"pairs", "per-pair BW (ideal sw)", "per-pair BW (shared)", "availability")
	for _, pairs := range []int{1, 2, 4} {
		idealBW, _, err := measure(pairs, 0)
		if err != nil {
			log.Fatal(err)
		}
		sharedBW, avails, err := measure(pairs, backplane)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %17.1f MB/s %17.1f MB/s %14.3f\n",
			pairs, mean(idealBW), mean(sharedBW), mean(avails))
	}
	fmt.Println()
	fmt.Println("On the non-blocking crossbar every pair keeps the full GM plateau.")
	fmt.Println("Once the pairs' aggregate demand exceeds the shared backplane, each")
	fmt.Println("pair gets a fair slice — and because GM waits in the NIC rather")
	fmt.Println("than the host, the lost bandwidth costs no CPU availability.")
}
