// Offloaddetect reproduces the paper's §4.1/§4.3 methodology as a
// reusable diagnostic: given a system, decide from COMB's post-work-wait
// signature whether it provides application offload, where its host
// cycles go, and whether a single MPI_Test in the work phase rescues
// progress (the MPI progress-rule violation the paper calls out).
//
// Run with: go run ./examples/offloaddetect
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"comb"
)

// report is the diagnosis for one system.
type report struct {
	system     string
	wait       time.Duration
	overhead   float64
	offload    bool
	testHelps  bool
	gainWithMT float64
}

func diagnose(system string) (report, error) {
	const (
		size = 100_000
		work = 10_000_000 // ~20 ms: long enough to hide a 100 KB transfer
	)
	pww := func(testInWork bool) (*comb.PWWResult, error) {
		out, err := comb.Run(context.Background(), comb.RunSpec{
			Method: comb.MethodPWW,
			System: system,
			PWW: &comb.PWWConfig{
				Config:       comb.Config{MsgSize: size},
				WorkInterval: work,
				Reps:         10,
				TestInWork:   testInWork,
			},
		})
		if err != nil {
			return nil, err
		}
		return out.PWW, nil
	}
	base, err := pww(false)
	if err != nil {
		return report{}, err
	}
	withTest, err := pww(true)
	if err != nil {
		return report{}, err
	}
	gain := withTest.BandwidthMBs/base.BandwidthMBs - 1
	return report{
		system:     system,
		wait:       base.AvgWait,
		overhead:   base.WorkOverhead,
		offload:    base.AvgWait < base.AvgWorkOnly/100,
		testHelps:  gain > 0.05,
		gainWithMT: gain,
	}, nil
}

func main() {
	fmt.Println("COMB application-offload detector (paper sections 4.1 and 4.3)")
	fmt.Println()
	fmt.Printf("%-10s %14s %12s %10s %18s\n",
		"system", "wait/msg", "work ovhd", "offload?", "MPI_Test gain")
	for _, system := range comb.Systems() {
		r, err := diagnose(system)
		if err != nil {
			log.Fatal(err)
		}
		offload := "no"
		if r.offload {
			offload = "YES"
		}
		fmt.Printf("%-10s %14v %11.1f%% %10s %17.1f%%\n",
			r.system, r.wait.Round(time.Microsecond), r.overhead*100, offload, r.gainWithMT*100)
	}
	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println(" * wait/msg ~ 0 with a long work phase  => the system progressed")
	fmt.Println("   messages with no MPI calls: application offload (paper Fig 11).")
	fmt.Println(" * work overhead > 0                    => communication steals host")
	fmt.Println("   cycles from the work phase (paper Fig 12).")
	fmt.Println(" * a large MPI_Test gain                => progress lives inside the")
	fmt.Println("   MPI library, violating the MPI progress rule (paper Fig 17).")
	os.Exit(0)
}
