// Smp implements the paper's §7 future work: COMB on multi-processor
// nodes.  The paper warns that its availability metric — dilation of one
// process's work loop — "will not work on systems with multiple
// processors per node", because interrupt and kernel load migrate to the
// idle processor.  This example shows the failure and the node-wide
// metric that repairs it.
//
// Run with: go run ./examples/smp
package main

import (
	"context"
	"fmt"
	"log"

	"comb"
)

func main() {
	fmt.Println("COMB on SMP nodes (paper §7 future work)")
	fmt.Println()
	fmt.Printf("%-10s %6s %14s %14s %14s\n",
		"system", "cpus", "bandwidth", "classic avail", "system avail")
	for _, system := range []string{"gm", "portals"} {
		for _, cpus := range []int{1, 2, 4} {
			out, err := comb.Run(context.Background(), comb.RunSpec{
				Method: comb.MethodPolling,
				System: system,
				CPUs:   cpus,
				Polling: &comb.PollingConfig{
					Config:       comb.Config{MsgSize: 100_000},
					PollInterval: 100_000,
					WorkTotal:    25_000_000,
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			res := out.Polling
			fmt.Printf("%-10s %6d %11.2f MB/s %14.3f %14.3f\n",
				system, cpus, res.BandwidthMBs, res.Availability, res.SystemAvailability)
		}
		fmt.Println()
	}
	fmt.Println("Two things happen to Portals as processors are added:")
	fmt.Println(" 1. bandwidth rises — the kernel's copies no longer fight the")
	fmt.Println("    application for one CPU; and")
	fmt.Println(" 2. the classic availability climbs even though the node still")
	fmt.Println("    burns the same cycles per byte.  The work loop just stops")
	fmt.Println("    seeing them — exactly the failure the paper predicted.")
	fmt.Println("The system-availability column charges overhead against the")
	fmt.Println("node's aggregate capacity, so it stays honest on SMP.")
}
