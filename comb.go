package comb

import (
	"time"

	"comb/internal/cluster"
	"comb/internal/core"
	"comb/internal/machine"
	"comb/internal/mpi"
	"comb/internal/platform"
	"comb/internal/sim"
	"comb/internal/stats"
	"comb/internal/sweep"
	"comb/internal/trace"
	"comb/internal/transport"
)

// Re-exported configuration and result types; see internal/core for the
// field documentation.
type (
	// Config holds parameters shared by both methods.
	Config = core.Config
	// PollingConfig parameterizes the polling method (§2.1).
	PollingConfig = core.PollingConfig
	// PWWConfig parameterizes the post-work-wait method (§2.2).
	PWWConfig = core.PWWConfig
	// PollingResult is one polling-method measurement.
	PollingResult = core.PollingResult
	// PWWResult is one post-work-wait measurement.
	PWWResult = core.PWWResult
	// Machine is the abstract platform COMB runs on.
	Machine = core.Machine
	// Table is a figure's data: named series plus axis metadata.
	Table = stats.Table
	// FigureSpec describes one reproducible paper figure.
	FigureSpec = sweep.Figure
)

// Systems lists the available simulated messaging systems ("gm",
// "portals", "ideal").
func Systems() []string { return transport.Names() }

// RunPolling runs one polling-method measurement of the named system on a
// freshly built two-node simulation and returns the worker's result.
func RunPolling(system string, cfg PollingConfig) (*PollingResult, error) {
	return sweep.RunPollingOnce(system, cfg)
}

// RunPWW runs one post-work-wait measurement of the named system and
// returns the worker's result.
func RunPWW(system string, cfg PWWConfig) (*PWWResult, error) {
	return sweep.RunPWWOnce(system, cfg)
}

// RunPollingOn is RunPolling with a processors-per-node override (cpus 0
// or 1 reproduces the paper's uniprocessor testbed).  Multi-processor
// nodes implement the paper's §7 future work: compare the result's
// Availability (the classic single-process metric, which SMP inflates)
// with SystemAvailability (the node-wide metric, which SMP does not fool).
func RunPollingOn(system string, cpus int, cfg PollingConfig) (*PollingResult, error) {
	var res *PollingResult
	var ferr error
	err := machine.Run(platform.Config{Transport: system, CPUs: cpus}, func(m Machine) {
		r, err := core.RunPolling(m, cfg)
		if err != nil {
			ferr = err
			return
		}
		if r != nil {
			res = r
		}
	})
	if err == nil {
		err = ferr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// NodeCPU is one node's CPU-time breakdown over a whole run.
type NodeCPU struct {
	Node      int
	Cores     int
	User      time.Duration
	Kernel    time.Duration
	Interrupt time.Duration
}

// RunStats aggregates the simulator's hardware counters for a run: what
// the wire and the hosts actually did while the benchmark measured.
type RunStats struct {
	// Packets and WireBytes count fabric traffic (headers included).
	Packets   int64
	WireBytes int64
	// CPUs holds the per-node CPU breakdown.
	CPUs []NodeCPU
}

// RunPollingStats is RunPollingOn plus the hardware counters.
func RunPollingStats(system string, cpus int, cfg PollingConfig) (*PollingResult, *RunStats, error) {
	res, st, _, err := RunPollingTraced(system, cpus, 0, cfg)
	return res, st, err
}

// RunPollingTraced is RunPollingStats plus a packet-level trace of the
// last traceCap fabric deliveries (nil recorder when traceCap is 0).
func RunPollingTraced(system string, cpus, traceCap int, cfg PollingConfig) (*PollingResult, *RunStats, *trace.Recorder, error) {
	var res *PollingResult
	var ferr error
	in, err := platform.New(platform.Config{Transport: system, CPUs: cpus})
	if err != nil {
		return nil, nil, nil, err
	}
	defer in.Close()
	var rec *trace.Recorder
	if traceCap > 0 {
		rec = trace.NewRecorder(traceCap)
		trace.AttachFabric(rec, in.Sys)
	}
	err = in.Run(func(p *sim.Proc, c *mpi.Comm) {
		r, err := core.RunPolling(machine.NewSim(p, c, in.Sys.Nodes[c.Rank()]), cfg)
		if err != nil {
			ferr = err
			return
		}
		if r != nil {
			res = r
		}
	})
	if err == nil {
		err = ferr
	}
	if err != nil {
		return nil, nil, nil, err
	}
	return res, snapshot(in), rec, nil
}

// snapshot collects hardware counters from a finished instance.
func snapshot(in *platform.Instance) *RunStats {
	st := &RunStats{}
	st.Packets, st.WireBytes, _ = in.Sys.Fabric.Stats()
	for _, n := range in.Sys.Nodes {
		st.CPUs = append(st.CPUs, NodeCPU{
			Node:      n.ID,
			Cores:     n.CPU.Cores(),
			User:      time.Duration(n.CPU.Usage(cluster.User)),
			Kernel:    time.Duration(n.CPU.Usage(cluster.Kernel)),
			Interrupt: time.Duration(n.CPU.Usage(cluster.Interrupt)),
		})
	}
	return st
}

// RunPWWOn is RunPWW with a processors-per-node override; see RunPollingOn.
func RunPWWOn(system string, cpus int, cfg PWWConfig) (*PWWResult, error) {
	var res *PWWResult
	var ferr error
	err := machine.Run(platform.Config{Transport: system, CPUs: cpus}, func(m Machine) {
		r, err := core.RunPWW(m, cfg)
		if err != nil {
			ferr = err
			return
		}
		if r != nil {
			res = r
		}
	})
	if err == nil {
		err = ferr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Figures lists every reproducible evaluation figure (paper Figures 4-17).
func Figures() []FigureSpec { return sweep.Figures() }

// BuildFigure regenerates the paper figure with the given number.  Quick
// mode shrinks the sweep for fast smoke runs.
func BuildFigure(id string, quick bool) (*Table, error) {
	f, err := sweep.ByID(id)
	if err != nil {
		return nil, err
	}
	return f.Build(sweep.Options{Quick: quick})
}
