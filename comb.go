package comb

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"comb/internal/cluster"
	"comb/internal/core"
	"comb/internal/faultinject"
	"comb/internal/invariant"
	"comb/internal/method"
	"comb/internal/mpi"
	"comb/internal/netperf"
	"comb/internal/obs"
	"comb/internal/pingpong"
	"comb/internal/platform"
	"comb/internal/stats"
	"comb/internal/sweep"
	"comb/internal/trace"
	"comb/internal/transport"

	// Register the full built-in method catalogue: every facade entry
	// point resolves methods by name through the registry.
	_ "comb/internal/method/all"
)

// Re-exported configuration and result types; see internal/core for the
// field documentation.
type (
	// Config holds parameters shared by both methods.
	Config = core.Config
	// PollingConfig parameterizes the polling method (§2.1).
	PollingConfig = core.PollingConfig
	// PWWConfig parameterizes the post-work-wait method (§2.2).
	PWWConfig = core.PWWConfig
	// PollingResult is one polling-method measurement.
	PollingResult = core.PollingResult
	// PWWResult is one post-work-wait measurement.
	PWWResult = core.PWWResult
	// PingpongConfig parameterizes the ping-pong baseline method.
	PingpongConfig = pingpong.Params
	// PingpongResult is one ping-pong measurement.
	PingpongResult = pingpong.Result
	// NetperfConfig parameterizes the netperf-style baseline method.
	NetperfConfig = netperf.Params
	// NetperfResult is one netperf-style measurement.
	NetperfResult = netperf.Result
	// MethodResult is the generic typed result every registered method
	// returns; see internal/method.
	MethodResult = method.Result
	// Machine is the abstract platform COMB runs on.
	Machine = core.Machine
	// Table is a figure's data: named series plus axis metadata.
	Table = stats.Table
	// FigureSpec describes one reproducible paper figure.
	FigureSpec = sweep.Figure
	// Trace is a packet-level recording of the last fabric deliveries.
	Trace = trace.Recorder
	// FaultSpec configures deterministic wire/CPU fault injection; see
	// internal/faultinject.
	FaultSpec = faultinject.Spec
	// Violation is one broken simulation invariant; see
	// internal/invariant.
	Violation = invariant.Violation
	// Capture is the structured span timeline of one observed run; see
	// internal/obs.
	Capture = obs.Capture
	// Metrics is a run's metric registry (counters, gauges, histograms)
	// renderable as Prometheus text or a JSON snapshot; see internal/obs.
	Metrics = obs.Registry
	// Manifest is the provenance record of one run: the spec, toolchain
	// versions, and a hash of the result; see internal/obs.
	Manifest = obs.Manifest
)

// ParseFaults reads a -faults command-line spec, e.g.
// "drop=0.01,delay=0.2:50us,seed=7".
func ParseFaults(s string) (FaultSpec, error) { return faultinject.Parse(s) }

// Systems lists the available simulated messaging systems ("gm",
// "portals", "ideal").
func Systems() []string { return transport.Names() }

// Method selects which benchmark method a RunSpec executes.  Any name
// in Methods() is valid; the constants below name the built-ins.
type Method string

const (
	// MethodPolling is the paper's §2.1 polling method.
	MethodPolling Method = "polling"
	// MethodPWW is the paper's §2.2 post-work-wait method.
	MethodPWW Method = "pww"
	// MethodPingpong is the blocking round-trip baseline.
	MethodPingpong Method = "pingpong"
	// MethodNetperf is the netperf-style availability baseline (§5).
	MethodNetperf Method = "netperf"
)

// Methods lists every registered benchmark method name, sorted.
func Methods() []string { return method.Names() }

// NetperfConfig.Mode values, re-exported for callers of the facade.
const (
	NetperfSelect   = netperf.ModeSelect
	NetperfBusyWait = netperf.ModeBusyWait
)

// RunSpec describes one measurement for Run: the method, the simulated
// system, and the method's configuration.
//
// The method configs are pointers so that "unset" is distinguishable from
// a zero-valued config: a nil pointer for the selected method is an
// error (the primary experiment variable has no default), while zero
// fields inside a supplied config follow the documented zero-means-default
// convention (see Config).
type RunSpec struct {
	// Method picks the benchmark method.  Empty infers it from whichever
	// config pointer is set.
	Method Method
	// System is the simulated messaging system ("gm", "portals", ...).
	System string
	// CPUs is the processors-per-node override; 0 or 1 reproduces the
	// paper's uniprocessor testbed.  Multi-processor nodes implement the
	// paper's §7 future work: compare the result's Availability (the
	// classic single-process metric, which SMP inflates) with
	// SystemAvailability (the node-wide metric, which SMP does not fool).
	CPUs int
	// TraceCap, when > 0, records the last TraceCap packet-level fabric
	// deliveries into RunResult.Trace.
	TraceCap int
	// ObsCap, when non-zero, collects the structured phase timeline —
	// engine phase spans (dry/post/work/wait/poll/drain) and per-message
	// MPI spans — into RunResult.Obs, keeping the last ObsCap spans
	// (obs.DefaultSpanCap when negative).  Zero leaves span collection
	// off; the engines then skip all span bookkeeping.
	ObsCap int
	// Seed overrides the wire's jitter/loss RNG seed (0 keeps the
	// platform default) and, when Faults is set without its own seed,
	// seeds the fault injector too — one knob makes a degraded run
	// replayable.
	Seed uint64
	// Faults, when non-nil and non-zero, wraps the transport with
	// deterministic fault injection (packet drop/dup/delay/reorder and
	// CPU jitter bursts).  Faults a transport cannot survive are masked;
	// see internal/faultinject.
	Faults *FaultSpec
	// Polling configures MethodPolling; it must be non-nil for that
	// method.
	Polling *PollingConfig
	// PWW configures MethodPWW; it must be non-nil for that method.
	PWW *PWWConfig
	// Params configures any other registered method (e.g. a
	// PingpongConfig for MethodPingpong); Method must name it
	// explicitly.  For polling and PWW the dedicated pointers above
	// take precedence.
	Params any
}

// resolve looks the spec's method up in the registry and picks its
// parameter value, inferring the method from the config pointers when
// unset.
func (s RunSpec) resolve() (method.Method, any, error) {
	name := s.Method
	if name == "" {
		switch {
		case s.Polling != nil && s.PWW != nil:
			return nil, nil, fmt.Errorf("comb: RunSpec sets both Polling and PWW configs; set Method to disambiguate")
		case s.Polling != nil:
			name = MethodPolling
		case s.PWW != nil:
			name = MethodPWW
		case s.Params != nil:
			return nil, nil, fmt.Errorf("comb: RunSpec.Params needs an explicit Method name (have %s)", strings.Join(Methods(), ", "))
		default:
			return nil, nil, fmt.Errorf("comb: RunSpec needs a method config (Polling or PWW, or Method plus Params)")
		}
	}
	m, err := method.Lookup(string(name))
	if err != nil {
		return nil, nil, fmt.Errorf("comb: unknown method %q (have %s)", name, strings.Join(Methods(), ", "))
	}
	var params any
	switch name {
	case MethodPolling:
		switch {
		case s.Polling != nil:
			params = *s.Polling
		case s.Params != nil:
			params = s.Params
		default:
			return nil, nil, fmt.Errorf("comb: %s run needs a non-nil Polling config (PollInterval has no default)", name)
		}
	case MethodPWW:
		switch {
		case s.PWW != nil:
			params = *s.PWW
		case s.Params != nil:
			params = s.Params
		default:
			return nil, nil, fmt.Errorf("comb: %s run needs a non-nil PWW config (WorkInterval has no default)", name)
		}
	default:
		if s.Params == nil {
			return nil, nil, fmt.Errorf("comb: %s run needs RunSpec.Params", name)
		}
		params = s.Params
	}
	return m, params, nil
}

// NodeCPU is one node's CPU-time breakdown over a whole run.
type NodeCPU struct {
	Node      int
	Cores     int
	User      time.Duration
	Kernel    time.Duration
	Interrupt time.Duration
}

// RunStats aggregates the simulator's hardware counters for a run: what
// the wire and the hosts actually did while the benchmark measured.
type RunStats struct {
	// Packets and WireBytes count fabric traffic (headers included).
	Packets   int64
	WireBytes int64
	// CPUs holds the per-node CPU breakdown.
	CPUs []NodeCPU
}

// RunResult bundles everything one Run produced: the method result,
// the hardware counters, and the optional packet trace.
type RunResult struct {
	// Value is the method's typed result, whatever the method (always
	// present).  For the built-ins it is a *PollingResult, *PWWResult,
	// *PingpongResult, or *NetperfResult.
	Value MethodResult
	// Polling is set for MethodPolling runs (a typed view of Value).
	Polling *PollingResult
	// PWW is set for MethodPWW runs (a typed view of Value).
	PWW *PWWResult
	// Stats holds the run's hardware counters (always present).
	Stats *RunStats
	// Trace holds the last RunSpec.TraceCap packet deliveries, or nil
	// when tracing was off.
	Trace *Trace
	// Obs holds the span timeline (plus packet instants when TraceCap
	// was also set), or nil when RunSpec.ObsCap was zero.  Export it
	// with obs.WriteChromeTrace or Capture.Save.
	Obs *Capture
	// Metrics is the run's metric registry: message/packet/byte
	// counters and phase-duration histograms (always present).
	Metrics *Metrics
	// Manifest records the run's full provenance, including a hash over
	// Polling/PWW/Stats that Replay verifies (always present).
	Manifest *Manifest
}

// Run executes one COMB measurement described by spec on a freshly built
// simulation and returns the worker's result plus hardware counters.  It
// is the single entry point behind the deprecated RunPolling*/RunPWW*
// helpers, and it dispatches every registered method — built-in or
// added — through the method registry's shared pipeline.  A cancelled
// ctx tears the simulation down mid-run and returns ctx.Err().
func Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	m, params, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	params, err = m.Validate(params)
	if err != nil {
		return nil, err
	}
	cfg := platform.Config{Transport: spec.System, CPUs: spec.CPUs, Seed: spec.Seed}
	if spec.Faults != nil && !spec.Faults.Zero() {
		fs := *spec.Faults
		if fs.Seed == 0 {
			fs.Seed = spec.Seed
		}
		if err := fs.Validate(); err != nil {
			return nil, err
		}
		inner, err := transport.ByName(spec.System)
		if err != nil {
			return nil, err
		}
		cfg.Custom = faultinject.Wrap(inner, fs)
	}
	in, err := platform.New(cfg)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	var rec *trace.Recorder
	if spec.TraceCap > 0 {
		rec = trace.NewRecorder(spec.TraceCap)
		trace.AttachFabric(rec, in.Sys)
	}
	reg := obs.NewRegistry()
	var col *obs.Collector
	if spec.ObsCap != 0 {
		capacity := spec.ObsCap
		if capacity < 0 {
			capacity = 0 // NewCollector's default
		}
		col = obs.NewCollector(capacity, reg)
	}
	res, chk, err := method.Execute(ctx, m, in, method.Config{
		System: spec.System,
		CPUs:   spec.CPUs,
		Params: params,
		Spans:  col,
	}, method.ExecOptions{Trace: rec, Spans: col})
	if err != nil {
		return nil, err
	}
	if verr := chk.Err(); verr != nil {
		replay := fmt.Sprintf("-seed %d", spec.Seed)
		if spec.Faults != nil && !spec.Faults.Zero() {
			replay += fmt.Sprintf(" -faults %q", spec.Faults.String())
		}
		return nil, fmt.Errorf("comb: %s/%s run broke the simulator (replay with %s): %w",
			m.Name(), spec.System, replay, verr)
	}
	out := &RunResult{Value: res}
	out.Polling, _ = res.(*PollingResult)
	out.PWW, _ = res.(*PWWResult)
	out.Stats = snapshot(in)
	out.Trace = rec
	fillMetrics(reg, in, chk.Meter())
	out.Metrics = reg
	if col != nil {
		out.Obs = col.Capture()
		if rec != nil {
			for _, e := range rec.Events() {
				out.Obs.Instants = append(out.Obs.Instants, obs.Instant{
					At: time.Duration(e.At), Cat: string(e.Cat), Node: e.Node, Detail: e.Detail,
				})
			}
		}
	}
	out.Manifest, err = buildManifest(spec, m, params, out)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fillMetrics loads the end-of-run hardware and message counters into
// the registry (phase histograms accrue live via the span collector).
func fillMetrics(reg *obs.Registry, in *platform.Instance, meter *mpi.Meter) {
	msgHelp := "MPI messages, by kind."
	reg.Counter(`comb_messages_posted_total{kind="send"}`, msgHelp).Add(meter.PostedSends)
	reg.Counter(`comb_messages_posted_total{kind="recv"}`, msgHelp).Add(meter.PostedRecvs)
	reg.Counter(`comb_messages_completed_total{kind="send"}`, msgHelp).Add(meter.DoneSends)
	reg.Counter(`comb_messages_completed_total{kind="recv"}`, msgHelp).Add(meter.DoneRecvs)
	byteHelp := "Payload bytes of completed messages, by kind."
	reg.Counter(`comb_message_bytes_total{kind="send"}`, byteHelp).Add(meter.SentBytes)
	reg.Counter(`comb_message_bytes_total{kind="recv"}`, byteHelp).Add(meter.RecvBytes)

	pktHelp := "Fabric packets, by fate."
	packets, wireBytes, delivered := in.Sys.Fabric.Stats()
	injDrop, injDup := in.Sys.Fabric.InjectStats()
	reg.Counter(`comb_packets_total{fate="sent"}`, pktHelp).Add(packets)
	reg.Counter(`comb_packets_total{fate="delivered"}`, pktHelp).Add(delivered)
	reg.Counter(`comb_packets_total{fate="lost"}`, pktHelp).Add(in.Sys.Fabric.Lost())
	reg.Counter(`comb_packets_total{fate="injected_drop"}`, pktHelp).Add(injDrop)
	reg.Counter(`comb_packets_total{fate="injected_dup"}`, pktHelp).Add(injDup)
	reg.Counter("comb_wire_bytes_total", "Bytes put on the wire, headers included.").Add(wireBytes)
}

// hashedResult is the canonical serialization ResultHash covers: the
// method name, its typed result, and the hardware counters — nothing
// host-dependent.
type hashedResult struct {
	Method string       `json:"method"`
	Value  MethodResult `json:"value"`
	Stats  *RunStats    `json:"stats"`
}

// buildManifest assembles the provenance record for a finished run.
// params is the method's validated (defaults applied) parameter value.
func buildManifest(spec RunSpec, m method.Method, params any, out *RunResult) (*Manifest, error) {
	mf := obs.NewManifest()
	mf.Method = m.Name()
	mf.System = spec.System
	mf.CPUs = spec.CPUs
	mf.Seed = spec.Seed
	if spec.Faults != nil && !spec.Faults.Zero() {
		fs := *spec.Faults
		if fs.Seed == 0 {
			fs.Seed = spec.Seed
		}
		mf.Faults = fs.String()
		_, mf.MaskedFaults = fs.Masked(transport.ToleranceOf(spec.System))
	}
	mf.Tolerance = toleranceNames(transport.ToleranceOf(spec.System))
	switch c := params.(type) {
	case core.PollingConfig:
		// Keep the dedicated manifest fields for the paper's two primary
		// methods so existing manifests and their consumers keep working.
		cc := c
		mf.Polling = &cc
	case core.PWWConfig:
		cc := c
		mf.PWW = &cc
	default:
		b, err := json.Marshal(params)
		if err != nil {
			return nil, fmt.Errorf("comb: manifest params: %w", err)
		}
		mf.Params = b
	}
	var err error
	mf.ResultHash, err = obs.HashResult(hashedResult{Method: m.Name(), Value: out.Value, Stats: out.Stats})
	return mf, err
}

// toleranceNames renders a transport tolerance as the manifest's sorted
// fault-name list.
func toleranceNames(t transport.Tolerance) []string {
	var out []string
	if t.Duplication {
		out = append(out, "dup")
	}
	if t.Loss {
		out = append(out, "loss")
	}
	if t.Reorder {
		out = append(out, "reorder")
	}
	return out
}

// SpecFromManifest reconstructs the RunSpec a manifest records, ready
// for Run.
func SpecFromManifest(mf *Manifest) (RunSpec, error) {
	spec := RunSpec{
		Method:  Method(mf.Method),
		System:  mf.System,
		CPUs:    mf.CPUs,
		Seed:    mf.Seed,
		Polling: mf.Polling,
		PWW:     mf.PWW,
	}
	if len(mf.Params) > 0 {
		m, err := method.Lookup(mf.Method)
		if err != nil {
			return RunSpec{}, fmt.Errorf("comb: unknown method %q (have %s)", mf.Method, strings.Join(Methods(), ", "))
		}
		p, err := m.DecodeParams(mf.Params)
		if err != nil {
			return RunSpec{}, fmt.Errorf("comb: manifest params: %w", err)
		}
		spec.Params = p
	}
	if mf.Faults != "" {
		fs, err := faultinject.Parse(mf.Faults)
		if err != nil {
			return RunSpec{}, fmt.Errorf("comb: manifest faults: %w", err)
		}
		spec.Faults = &fs
	}
	if _, _, err := spec.resolve(); err != nil {
		return RunSpec{}, err
	}
	return spec, nil
}

// Replay re-executes the measurement a manifest records and verifies
// that the fresh result hashes to the manifest's ResultHash.  The fresh
// result is returned even on hash mismatch (alongside the error) so
// callers can diff the two runs.
func Replay(ctx context.Context, mf *Manifest) (*RunResult, error) {
	spec, err := SpecFromManifest(mf)
	if err != nil {
		return nil, err
	}
	res, err := Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	if mf.ResultHash != "" && res.Manifest.ResultHash != mf.ResultHash {
		return res, fmt.Errorf("comb: replay diverged: manifest result hash %s, this run %s",
			mf.ResultHash, res.Manifest.ResultHash)
	}
	return res, nil
}

// snapshot collects hardware counters from a finished instance.
func snapshot(in *platform.Instance) *RunStats {
	st := &RunStats{}
	st.Packets, st.WireBytes, _ = in.Sys.Fabric.Stats()
	for _, n := range in.Sys.Nodes {
		st.CPUs = append(st.CPUs, NodeCPU{
			Node:      n.ID,
			Cores:     n.CPU.Cores(),
			User:      time.Duration(n.CPU.Usage(cluster.User)),
			Kernel:    time.Duration(n.CPU.Usage(cluster.Kernel)),
			Interrupt: time.Duration(n.CPU.Usage(cluster.Interrupt)),
		})
	}
	return st
}

// RunPolling runs one polling-method measurement of the named system on a
// freshly built two-node simulation and returns the worker's result.
//
// Deprecated: use Run with a RunSpec{Method: MethodPolling}.
func RunPolling(system string, cfg PollingConfig) (*PollingResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPolling, System: system, Polling: &cfg})
	if err != nil {
		return nil, err
	}
	return res.Polling, nil
}

// RunPollingOn is RunPolling with a processors-per-node override.
//
// Deprecated: use Run with a RunSpec{Method: MethodPolling, CPUs: cpus}.
func RunPollingOn(system string, cpus int, cfg PollingConfig) (*PollingResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPolling, System: system, CPUs: cpus, Polling: &cfg})
	if err != nil {
		return nil, err
	}
	return res.Polling, nil
}

// RunPollingStats is RunPollingOn plus the hardware counters.
//
// Deprecated: use Run; RunResult.Stats is always populated.
func RunPollingStats(system string, cpus int, cfg PollingConfig) (*PollingResult, *RunStats, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPolling, System: system, CPUs: cpus, Polling: &cfg})
	if err != nil {
		return nil, nil, err
	}
	return res.Polling, res.Stats, nil
}

// RunPollingTraced is RunPollingStats plus a packet-level trace of the
// last traceCap fabric deliveries (nil recorder when traceCap is 0).
//
// Deprecated: use Run with RunSpec.TraceCap.
func RunPollingTraced(system string, cpus, traceCap int, cfg PollingConfig) (*PollingResult, *RunStats, *trace.Recorder, error) {
	res, err := Run(context.Background(), RunSpec{
		Method: MethodPolling, System: system, CPUs: cpus, TraceCap: traceCap, Polling: &cfg,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return res.Polling, res.Stats, res.Trace, nil
}

// RunPWW runs one post-work-wait measurement of the named system and
// returns the worker's result.
//
// Deprecated: use Run with a RunSpec{Method: MethodPWW}.
func RunPWW(system string, cfg PWWConfig) (*PWWResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPWW, System: system, PWW: &cfg})
	if err != nil {
		return nil, err
	}
	return res.PWW, nil
}

// RunPWWOn is RunPWW with a processors-per-node override; see
// RunSpec.CPUs.
//
// Deprecated: use Run with a RunSpec{Method: MethodPWW, CPUs: cpus}.
func RunPWWOn(system string, cpus int, cfg PWWConfig) (*PWWResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPWW, System: system, CPUs: cpus, PWW: &cfg})
	if err != nil {
		return nil, err
	}
	return res.PWW, nil
}

// Figures lists every reproducible evaluation figure (paper Figures 4-17).
func Figures() []FigureSpec { return sweep.Figures() }

// BuildFigure regenerates the paper figure with the given number.  Quick
// mode shrinks the sweep for fast smoke runs.  Points execute in parallel
// on the sweep package's default engine; use BuildFigureContext for
// cancellation or a custom engine.
func BuildFigure(id string, quick bool) (*Table, error) {
	return BuildFigureContext(context.Background(), id, quick)
}

// BuildFigureContext is BuildFigure under a context: a cancelled ctx
// stops the sweep between (and inside) points.
func BuildFigureContext(ctx context.Context, id string, quick bool) (*Table, error) {
	f, err := sweep.ByID(id)
	if err != nil {
		return nil, err
	}
	return f.Build(sweep.Options{Quick: quick, Context: ctx})
}
