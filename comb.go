package comb

import (
	"context"
	"fmt"

	"comb/internal/core"
	"comb/internal/faultinject"
	"comb/internal/invariant"
	"comb/internal/method"
	"comb/internal/netperf"
	"comb/internal/obs"
	"comb/internal/pingpong"
	"comb/internal/runpipe"
	"comb/internal/spec"
	"comb/internal/stats"
	"comb/internal/strategy"
	"comb/internal/sweep"
	"comb/internal/trace"
	"comb/internal/transport"

	// Register the full built-in method catalogue: every facade entry
	// point resolves methods by name through the registry.
	_ "comb/internal/method/all"
)

// Re-exported configuration and result types; see internal/core for the
// field documentation.
type (
	// Config holds parameters shared by both methods.
	Config = core.Config
	// PollingConfig parameterizes the polling method (§2.1).
	PollingConfig = core.PollingConfig
	// PWWConfig parameterizes the post-work-wait method (§2.2).
	PWWConfig = core.PWWConfig
	// PollingResult is one polling-method measurement.
	PollingResult = core.PollingResult
	// PWWResult is one post-work-wait measurement.
	PWWResult = core.PWWResult
	// PingpongConfig parameterizes the ping-pong baseline method.
	PingpongConfig = pingpong.Params
	// PingpongResult is one ping-pong measurement.
	PingpongResult = pingpong.Result
	// NetperfConfig parameterizes the netperf-style baseline method.
	NetperfConfig = netperf.Params
	// NetperfResult is one netperf-style measurement.
	NetperfResult = netperf.Result
	// MethodResult is the generic typed result every registered method
	// returns; see internal/method.
	MethodResult = method.Result
	// Machine is the abstract platform COMB runs on.
	Machine = core.Machine
	// Table is a figure's data: named series plus axis metadata.
	Table = stats.Table
	// FigureSpec describes one reproducible paper figure.
	FigureSpec = sweep.Figure
	// Trace is a packet-level recording of the last fabric deliveries.
	Trace = trace.Recorder
	// FaultSpec configures deterministic wire/CPU fault injection; see
	// internal/faultinject.
	FaultSpec = faultinject.Spec
	// Violation is one broken simulation invariant; see
	// internal/invariant.
	Violation = invariant.Violation
	// Capture is the structured span timeline of one observed run; see
	// internal/obs.
	Capture = obs.Capture
	// Metrics is a run's metric registry (counters, gauges, histograms)
	// renderable as Prometheus text or a JSON snapshot; see internal/obs.
	Metrics = obs.Registry
	// Manifest is the provenance record of one run: the spec, toolchain
	// versions, and a hash of the result; see internal/obs.
	Manifest = obs.Manifest
)

// ParseFaults reads a -faults command-line spec, e.g.
// "drop=0.01,delay=0.2:50us,seed=7".
func ParseFaults(s string) (FaultSpec, error) { return faultinject.Parse(s) }

// Systems lists the available simulated messaging systems ("gm",
// "portals", "ideal").
func Systems() []string { return transport.Names() }

// Method selects which benchmark method a RunSpec executes.  Any name
// in Methods() is valid; the constants below name the built-ins.
type Method = spec.Method

const (
	// MethodPolling is the paper's §2.1 polling method.
	MethodPolling = spec.MethodPolling
	// MethodPWW is the paper's §2.2 post-work-wait method.
	MethodPWW = spec.MethodPWW
	// MethodPingpong is the blocking round-trip baseline.
	MethodPingpong = spec.MethodPingpong
	// MethodNetperf is the netperf-style availability baseline (§5).
	MethodNetperf = spec.MethodNetperf
	// MethodCollov is the collective/computation overlap benchmark.
	MethodCollov = spec.MethodCollov
	// MethodHalo is the 2D stencil halo exchange.
	MethodHalo = spec.MethodHalo
)

// Methods lists every registered benchmark method name, sorted.
func Methods() []string { return method.Names() }

// NetperfConfig.Mode values, re-exported for callers of the facade.
const (
	NetperfSelect   = netperf.ModeSelect
	NetperfBusyWait = netperf.ModeBusyWait
)

// SweepStrategy selects how a sweep spends its engine evaluations:
// "grid" (every dense point, the default), "bisect" (binary-search the
// axis for a metric threshold), "knee" (concentrate a point budget
// around the steepest gradient), or "adaptive-reps" (repeat each point
// until its confidence interval tightens).  See internal/strategy for
// the knob grammar.
type SweepStrategy = strategy.Spec

// ParseStrategy reads a -strategy command-line spec, e.g. "grid",
// "bisect:target=0.5", "knee:budget=12" or
// "adaptive-reps:reltol=0.05,maxreps=16", validating the knobs and
// filling defaults.
func ParseStrategy(s string) (*SweepStrategy, error) { return strategy.Parse(s) }

// Strategies lists the available sweep strategy names, sorted.
func Strategies() []string { return strategy.Names() }

// SpecVersion is the wire-schema version RunSpec marshals to and from:
// the same versioned JSON document serves the library, `comb run -spec`,
// and the serve API's request body.  Decoding a document with a missing
// or different "specVersion" fails with a *SpecVersionError.
const SpecVersion = spec.Version

// SpecVersionError reports a spec document whose specVersion this build
// does not speak; match it with errors.As.
type SpecVersionError = spec.VersionError

// RunSpec describes one measurement for Run: the method, the simulated
// system, and the method's configuration.  It is an alias of the single
// spec type (internal/spec.Spec) every COMB entry point shares — the
// sweep runner schedules the same type as its Point, and its JSON
// encoding is the versioned wire document the CLI and the serve API
// accept.  See the aliased type for field documentation.
type RunSpec = spec.Spec

// NodeCPU is one node's CPU-time breakdown over a whole run.
type NodeCPU = runpipe.NodeCPU

// RunStats aggregates the simulator's hardware counters for a run: what
// the wire and the hosts actually did while the benchmark measured.
type RunStats = runpipe.RunStats

// RunResult bundles everything one Run produced: the method result, the
// hardware counters, the optional packet trace and span timeline, the
// metric registry, and the provenance manifest.  See the aliased type
// (internal/runpipe.Outcome) for field documentation.
type RunResult = runpipe.Outcome

// Run executes one COMB measurement described by spec on a freshly built
// simulation and returns the worker's result plus hardware counters.  It
// is the facade's single entry point: every registered method — built-in
// or added — dispatches through the method registry's shared pipeline
// (the former RunPolling*/RunPWW* helpers are gone; express their
// configurations as RunSpecs).  A cancelled ctx tears the simulation
// down mid-run and returns ctx.Err().
func Run(ctx context.Context, s RunSpec) (*RunResult, error) {
	return runpipe.Run(ctx, s)
}

// SpecFromManifest reconstructs the RunSpec a manifest records, ready
// for Run.
func SpecFromManifest(mf *Manifest) (RunSpec, error) {
	return runpipe.SpecFromManifest(mf)
}

// Replay re-executes the measurement a manifest records and verifies
// that the fresh result hashes to the manifest's ResultHash.  The fresh
// result is returned even on hash mismatch (alongside the error) so
// callers can diff the two runs.
func Replay(ctx context.Context, mf *Manifest) (*RunResult, error) {
	s, err := SpecFromManifest(mf)
	if err != nil {
		return nil, err
	}
	res, err := Run(ctx, s)
	if err != nil {
		return nil, err
	}
	if mf.ResultHash != "" && res.Manifest.ResultHash != mf.ResultHash {
		return res, fmt.Errorf("comb: replay diverged: manifest result hash %s, this run %s",
			mf.ResultHash, res.Manifest.ResultHash)
	}
	return res, nil
}

// Figures lists every reproducible evaluation figure: the paper's
// Figures 4-17 plus the multi-rank collective-overlap Figure 18.
func Figures() []FigureSpec { return sweep.Figures() }

// BuildFigure regenerates the paper figure with the given number.  Quick
// mode shrinks the sweep for fast smoke runs.  Points execute in parallel
// on the sweep package's default engine; use BuildFigureContext for
// cancellation or a custom engine.
func BuildFigure(id string, quick bool) (*Table, error) {
	return BuildFigureContext(context.Background(), id, quick)
}

// BuildFigureContext is BuildFigure under a context: a cancelled ctx
// stops the sweep between (and inside) points.
func BuildFigureContext(ctx context.Context, id string, quick bool) (*Table, error) {
	f, err := sweep.ByID(id)
	if err != nil {
		return nil, err
	}
	return f.Build(sweep.Options{Quick: quick, Context: ctx})
}
