package comb

import (
	"context"
	"fmt"
	"time"

	"comb/internal/cluster"
	"comb/internal/core"
	"comb/internal/faultinject"
	"comb/internal/invariant"
	"comb/internal/machine"
	"comb/internal/mpi"
	"comb/internal/platform"
	"comb/internal/sim"
	"comb/internal/stats"
	"comb/internal/sweep"
	"comb/internal/trace"
	"comb/internal/transport"
)

// Re-exported configuration and result types; see internal/core for the
// field documentation.
type (
	// Config holds parameters shared by both methods.
	Config = core.Config
	// PollingConfig parameterizes the polling method (§2.1).
	PollingConfig = core.PollingConfig
	// PWWConfig parameterizes the post-work-wait method (§2.2).
	PWWConfig = core.PWWConfig
	// PollingResult is one polling-method measurement.
	PollingResult = core.PollingResult
	// PWWResult is one post-work-wait measurement.
	PWWResult = core.PWWResult
	// Machine is the abstract platform COMB runs on.
	Machine = core.Machine
	// Table is a figure's data: named series plus axis metadata.
	Table = stats.Table
	// FigureSpec describes one reproducible paper figure.
	FigureSpec = sweep.Figure
	// Trace is a packet-level recording of the last fabric deliveries.
	Trace = trace.Recorder
	// FaultSpec configures deterministic wire/CPU fault injection; see
	// internal/faultinject.
	FaultSpec = faultinject.Spec
	// Violation is one broken simulation invariant; see
	// internal/invariant.
	Violation = invariant.Violation
)

// ParseFaults reads a -faults command-line spec, e.g.
// "drop=0.01,delay=0.2:50us,seed=7".
func ParseFaults(s string) (FaultSpec, error) { return faultinject.Parse(s) }

// Systems lists the available simulated messaging systems ("gm",
// "portals", "ideal").
func Systems() []string { return transport.Names() }

// Method selects which COMB method a RunSpec executes.
type Method string

const (
	// MethodPolling is the paper's §2.1 polling method.
	MethodPolling Method = "polling"
	// MethodPWW is the paper's §2.2 post-work-wait method.
	MethodPWW Method = "pww"
)

// RunSpec describes one measurement for Run: the method, the simulated
// system, and the method's configuration.
//
// The method configs are pointers so that "unset" is distinguishable from
// a zero-valued config: a nil pointer for the selected method is an
// error (the primary experiment variable has no default), while zero
// fields inside a supplied config follow the documented zero-means-default
// convention (see Config).
type RunSpec struct {
	// Method picks the benchmark method.  Empty infers it from whichever
	// config pointer is set.
	Method Method
	// System is the simulated messaging system ("gm", "portals", ...).
	System string
	// CPUs is the processors-per-node override; 0 or 1 reproduces the
	// paper's uniprocessor testbed.  Multi-processor nodes implement the
	// paper's §7 future work: compare the result's Availability (the
	// classic single-process metric, which SMP inflates) with
	// SystemAvailability (the node-wide metric, which SMP does not fool).
	CPUs int
	// TraceCap, when > 0, records the last TraceCap packet-level fabric
	// deliveries into RunResult.Trace.
	TraceCap int
	// Seed overrides the wire's jitter/loss RNG seed (0 keeps the
	// platform default) and, when Faults is set without its own seed,
	// seeds the fault injector too — one knob makes a degraded run
	// replayable.
	Seed uint64
	// Faults, when non-nil and non-zero, wraps the transport with
	// deterministic fault injection (packet drop/dup/delay/reorder and
	// CPU jitter bursts).  Faults a transport cannot survive are masked;
	// see internal/faultinject.
	Faults *FaultSpec
	// Polling configures MethodPolling; it must be non-nil for that
	// method.
	Polling *PollingConfig
	// PWW configures MethodPWW; it must be non-nil for that method.
	PWW *PWWConfig
}

// method resolves the spec's method, inferring it from the config
// pointers when unset.
func (s RunSpec) method() (Method, error) {
	switch s.Method {
	case MethodPolling:
		if s.Polling == nil {
			return "", fmt.Errorf("comb: %s run needs a non-nil Polling config (PollInterval has no default)", s.Method)
		}
		return s.Method, nil
	case MethodPWW:
		if s.PWW == nil {
			return "", fmt.Errorf("comb: %s run needs a non-nil PWW config (WorkInterval has no default)", s.Method)
		}
		return s.Method, nil
	case "":
		switch {
		case s.Polling != nil && s.PWW != nil:
			return "", fmt.Errorf("comb: RunSpec sets both Polling and PWW configs; set Method to disambiguate")
		case s.Polling != nil:
			return MethodPolling, nil
		case s.PWW != nil:
			return MethodPWW, nil
		default:
			return "", fmt.Errorf("comb: RunSpec needs a method config (Polling or PWW)")
		}
	default:
		return "", fmt.Errorf("comb: unknown method %q (have %q, %q)", s.Method, MethodPolling, MethodPWW)
	}
}

// NodeCPU is one node's CPU-time breakdown over a whole run.
type NodeCPU struct {
	Node      int
	Cores     int
	User      time.Duration
	Kernel    time.Duration
	Interrupt time.Duration
}

// RunStats aggregates the simulator's hardware counters for a run: what
// the wire and the hosts actually did while the benchmark measured.
type RunStats struct {
	// Packets and WireBytes count fabric traffic (headers included).
	Packets   int64
	WireBytes int64
	// CPUs holds the per-node CPU breakdown.
	CPUs []NodeCPU
}

// RunResult bundles everything one Run produced: the method result
// (exactly one of Polling/PWW is set, matching the spec), the hardware
// counters, and the optional packet trace.
type RunResult struct {
	// Polling is set for MethodPolling runs.
	Polling *PollingResult
	// PWW is set for MethodPWW runs.
	PWW *PWWResult
	// Stats holds the run's hardware counters (always present).
	Stats *RunStats
	// Trace holds the last RunSpec.TraceCap packet deliveries, or nil
	// when tracing was off.
	Trace *Trace
}

// Run executes one COMB measurement described by spec on a freshly built
// simulation and returns the worker's result plus hardware counters.  It
// is the single entry point behind the deprecated RunPolling*/RunPWW*
// helpers.  A cancelled ctx tears the simulation down mid-run and returns
// ctx.Err().
func Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	m, err := spec.method()
	if err != nil {
		return nil, err
	}
	cfg := platform.Config{Transport: spec.System, CPUs: spec.CPUs, Seed: spec.Seed}
	if spec.Faults != nil && !spec.Faults.Zero() {
		fs := *spec.Faults
		if fs.Seed == 0 {
			fs.Seed = spec.Seed
		}
		if err := fs.Validate(); err != nil {
			return nil, err
		}
		inner, err := transport.ByName(spec.System)
		if err != nil {
			return nil, err
		}
		cfg.Custom = faultinject.Wrap(inner, fs)
	}
	in, err := platform.New(cfg)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	var rec *trace.Recorder
	if spec.TraceCap > 0 {
		rec = trace.NewRecorder(spec.TraceCap)
		trace.AttachFabric(rec, in.Sys)
	}
	chk := invariant.Attach(in.Sys, in.Comms, invariant.Options{Trace: rec})
	out := &RunResult{}
	var ferr error
	err = in.RunContext(ctx, func(p *sim.Proc, c *mpi.Comm) {
		mach := machine.NewSim(p, c, in.Sys.Nodes[c.Rank()])
		switch m {
		case MethodPolling:
			r, err := core.RunPolling(mach, *spec.Polling)
			if err != nil {
				ferr = err
				return
			}
			if r != nil {
				out.Polling = r
			}
		case MethodPWW:
			r, err := core.RunPWW(mach, *spec.PWW)
			if err != nil {
				ferr = err
				return
			}
			if r != nil {
				out.PWW = r
			}
		}
	})
	if err == nil {
		err = ferr
	}
	if err != nil {
		return nil, err
	}
	if out.Polling == nil && out.PWW == nil {
		return nil, fmt.Errorf("comb: %s run produced no worker result", m)
	}
	chk.Finish()
	chk.CheckPolling(out.Polling)
	chk.CheckPWW(out.PWW)
	if verr := chk.Err(); verr != nil {
		replay := fmt.Sprintf("-seed %d", spec.Seed)
		if spec.Faults != nil && !spec.Faults.Zero() {
			replay += fmt.Sprintf(" -faults %q", spec.Faults.String())
		}
		return nil, fmt.Errorf("comb: %s/%s run broke the simulator (replay with %s): %w",
			m, spec.System, replay, verr)
	}
	out.Stats = snapshot(in)
	out.Trace = rec
	return out, nil
}

// snapshot collects hardware counters from a finished instance.
func snapshot(in *platform.Instance) *RunStats {
	st := &RunStats{}
	st.Packets, st.WireBytes, _ = in.Sys.Fabric.Stats()
	for _, n := range in.Sys.Nodes {
		st.CPUs = append(st.CPUs, NodeCPU{
			Node:      n.ID,
			Cores:     n.CPU.Cores(),
			User:      time.Duration(n.CPU.Usage(cluster.User)),
			Kernel:    time.Duration(n.CPU.Usage(cluster.Kernel)),
			Interrupt: time.Duration(n.CPU.Usage(cluster.Interrupt)),
		})
	}
	return st
}

// RunPolling runs one polling-method measurement of the named system on a
// freshly built two-node simulation and returns the worker's result.
//
// Deprecated: use Run with a RunSpec{Method: MethodPolling}.
func RunPolling(system string, cfg PollingConfig) (*PollingResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPolling, System: system, Polling: &cfg})
	if err != nil {
		return nil, err
	}
	return res.Polling, nil
}

// RunPollingOn is RunPolling with a processors-per-node override.
//
// Deprecated: use Run with a RunSpec{Method: MethodPolling, CPUs: cpus}.
func RunPollingOn(system string, cpus int, cfg PollingConfig) (*PollingResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPolling, System: system, CPUs: cpus, Polling: &cfg})
	if err != nil {
		return nil, err
	}
	return res.Polling, nil
}

// RunPollingStats is RunPollingOn plus the hardware counters.
//
// Deprecated: use Run; RunResult.Stats is always populated.
func RunPollingStats(system string, cpus int, cfg PollingConfig) (*PollingResult, *RunStats, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPolling, System: system, CPUs: cpus, Polling: &cfg})
	if err != nil {
		return nil, nil, err
	}
	return res.Polling, res.Stats, nil
}

// RunPollingTraced is RunPollingStats plus a packet-level trace of the
// last traceCap fabric deliveries (nil recorder when traceCap is 0).
//
// Deprecated: use Run with RunSpec.TraceCap.
func RunPollingTraced(system string, cpus, traceCap int, cfg PollingConfig) (*PollingResult, *RunStats, *trace.Recorder, error) {
	res, err := Run(context.Background(), RunSpec{
		Method: MethodPolling, System: system, CPUs: cpus, TraceCap: traceCap, Polling: &cfg,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return res.Polling, res.Stats, res.Trace, nil
}

// RunPWW runs one post-work-wait measurement of the named system and
// returns the worker's result.
//
// Deprecated: use Run with a RunSpec{Method: MethodPWW}.
func RunPWW(system string, cfg PWWConfig) (*PWWResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPWW, System: system, PWW: &cfg})
	if err != nil {
		return nil, err
	}
	return res.PWW, nil
}

// RunPWWOn is RunPWW with a processors-per-node override; see
// RunSpec.CPUs.
//
// Deprecated: use Run with a RunSpec{Method: MethodPWW, CPUs: cpus}.
func RunPWWOn(system string, cpus int, cfg PWWConfig) (*PWWResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPWW, System: system, CPUs: cpus, PWW: &cfg})
	if err != nil {
		return nil, err
	}
	return res.PWW, nil
}

// Figures lists every reproducible evaluation figure (paper Figures 4-17).
func Figures() []FigureSpec { return sweep.Figures() }

// BuildFigure regenerates the paper figure with the given number.  Quick
// mode shrinks the sweep for fast smoke runs.  Points execute in parallel
// on the sweep package's default engine; use BuildFigureContext for
// cancellation or a custom engine.
func BuildFigure(id string, quick bool) (*Table, error) {
	return BuildFigureContext(context.Background(), id, quick)
}

// BuildFigureContext is BuildFigure under a context: a cancelled ctx
// stops the sweep between (and inside) points.
func BuildFigureContext(ctx context.Context, id string, quick bool) (*Table, error) {
	f, err := sweep.ByID(id)
	if err != nil {
		return nil, err
	}
	return f.Build(sweep.Options{Quick: quick, Context: ctx})
}
