package comb

import (
	"context"
	"fmt"
	"time"

	"comb/internal/cluster"
	"comb/internal/core"
	"comb/internal/faultinject"
	"comb/internal/invariant"
	"comb/internal/machine"
	"comb/internal/mpi"
	"comb/internal/obs"
	"comb/internal/platform"
	"comb/internal/sim"
	"comb/internal/stats"
	"comb/internal/sweep"
	"comb/internal/trace"
	"comb/internal/transport"
)

// Re-exported configuration and result types; see internal/core for the
// field documentation.
type (
	// Config holds parameters shared by both methods.
	Config = core.Config
	// PollingConfig parameterizes the polling method (§2.1).
	PollingConfig = core.PollingConfig
	// PWWConfig parameterizes the post-work-wait method (§2.2).
	PWWConfig = core.PWWConfig
	// PollingResult is one polling-method measurement.
	PollingResult = core.PollingResult
	// PWWResult is one post-work-wait measurement.
	PWWResult = core.PWWResult
	// Machine is the abstract platform COMB runs on.
	Machine = core.Machine
	// Table is a figure's data: named series plus axis metadata.
	Table = stats.Table
	// FigureSpec describes one reproducible paper figure.
	FigureSpec = sweep.Figure
	// Trace is a packet-level recording of the last fabric deliveries.
	Trace = trace.Recorder
	// FaultSpec configures deterministic wire/CPU fault injection; see
	// internal/faultinject.
	FaultSpec = faultinject.Spec
	// Violation is one broken simulation invariant; see
	// internal/invariant.
	Violation = invariant.Violation
	// Capture is the structured span timeline of one observed run; see
	// internal/obs.
	Capture = obs.Capture
	// Metrics is a run's metric registry (counters, gauges, histograms)
	// renderable as Prometheus text or a JSON snapshot; see internal/obs.
	Metrics = obs.Registry
	// Manifest is the provenance record of one run: the spec, toolchain
	// versions, and a hash of the result; see internal/obs.
	Manifest = obs.Manifest
)

// ParseFaults reads a -faults command-line spec, e.g.
// "drop=0.01,delay=0.2:50us,seed=7".
func ParseFaults(s string) (FaultSpec, error) { return faultinject.Parse(s) }

// Systems lists the available simulated messaging systems ("gm",
// "portals", "ideal").
func Systems() []string { return transport.Names() }

// Method selects which COMB method a RunSpec executes.
type Method string

const (
	// MethodPolling is the paper's §2.1 polling method.
	MethodPolling Method = "polling"
	// MethodPWW is the paper's §2.2 post-work-wait method.
	MethodPWW Method = "pww"
)

// RunSpec describes one measurement for Run: the method, the simulated
// system, and the method's configuration.
//
// The method configs are pointers so that "unset" is distinguishable from
// a zero-valued config: a nil pointer for the selected method is an
// error (the primary experiment variable has no default), while zero
// fields inside a supplied config follow the documented zero-means-default
// convention (see Config).
type RunSpec struct {
	// Method picks the benchmark method.  Empty infers it from whichever
	// config pointer is set.
	Method Method
	// System is the simulated messaging system ("gm", "portals", ...).
	System string
	// CPUs is the processors-per-node override; 0 or 1 reproduces the
	// paper's uniprocessor testbed.  Multi-processor nodes implement the
	// paper's §7 future work: compare the result's Availability (the
	// classic single-process metric, which SMP inflates) with
	// SystemAvailability (the node-wide metric, which SMP does not fool).
	CPUs int
	// TraceCap, when > 0, records the last TraceCap packet-level fabric
	// deliveries into RunResult.Trace.
	TraceCap int
	// ObsCap, when non-zero, collects the structured phase timeline —
	// engine phase spans (dry/post/work/wait/poll/drain) and per-message
	// MPI spans — into RunResult.Obs, keeping the last ObsCap spans
	// (obs.DefaultSpanCap when negative).  Zero leaves span collection
	// off; the engines then skip all span bookkeeping.
	ObsCap int
	// Seed overrides the wire's jitter/loss RNG seed (0 keeps the
	// platform default) and, when Faults is set without its own seed,
	// seeds the fault injector too — one knob makes a degraded run
	// replayable.
	Seed uint64
	// Faults, when non-nil and non-zero, wraps the transport with
	// deterministic fault injection (packet drop/dup/delay/reorder and
	// CPU jitter bursts).  Faults a transport cannot survive are masked;
	// see internal/faultinject.
	Faults *FaultSpec
	// Polling configures MethodPolling; it must be non-nil for that
	// method.
	Polling *PollingConfig
	// PWW configures MethodPWW; it must be non-nil for that method.
	PWW *PWWConfig
}

// method resolves the spec's method, inferring it from the config
// pointers when unset.
func (s RunSpec) method() (Method, error) {
	switch s.Method {
	case MethodPolling:
		if s.Polling == nil {
			return "", fmt.Errorf("comb: %s run needs a non-nil Polling config (PollInterval has no default)", s.Method)
		}
		return s.Method, nil
	case MethodPWW:
		if s.PWW == nil {
			return "", fmt.Errorf("comb: %s run needs a non-nil PWW config (WorkInterval has no default)", s.Method)
		}
		return s.Method, nil
	case "":
		switch {
		case s.Polling != nil && s.PWW != nil:
			return "", fmt.Errorf("comb: RunSpec sets both Polling and PWW configs; set Method to disambiguate")
		case s.Polling != nil:
			return MethodPolling, nil
		case s.PWW != nil:
			return MethodPWW, nil
		default:
			return "", fmt.Errorf("comb: RunSpec needs a method config (Polling or PWW)")
		}
	default:
		return "", fmt.Errorf("comb: unknown method %q (have %q, %q)", s.Method, MethodPolling, MethodPWW)
	}
}

// NodeCPU is one node's CPU-time breakdown over a whole run.
type NodeCPU struct {
	Node      int
	Cores     int
	User      time.Duration
	Kernel    time.Duration
	Interrupt time.Duration
}

// RunStats aggregates the simulator's hardware counters for a run: what
// the wire and the hosts actually did while the benchmark measured.
type RunStats struct {
	// Packets and WireBytes count fabric traffic (headers included).
	Packets   int64
	WireBytes int64
	// CPUs holds the per-node CPU breakdown.
	CPUs []NodeCPU
}

// RunResult bundles everything one Run produced: the method result
// (exactly one of Polling/PWW is set, matching the spec), the hardware
// counters, and the optional packet trace.
type RunResult struct {
	// Polling is set for MethodPolling runs.
	Polling *PollingResult
	// PWW is set for MethodPWW runs.
	PWW *PWWResult
	// Stats holds the run's hardware counters (always present).
	Stats *RunStats
	// Trace holds the last RunSpec.TraceCap packet deliveries, or nil
	// when tracing was off.
	Trace *Trace
	// Obs holds the span timeline (plus packet instants when TraceCap
	// was also set), or nil when RunSpec.ObsCap was zero.  Export it
	// with obs.WriteChromeTrace or Capture.Save.
	Obs *Capture
	// Metrics is the run's metric registry: message/packet/byte
	// counters and phase-duration histograms (always present).
	Metrics *Metrics
	// Manifest records the run's full provenance, including a hash over
	// Polling/PWW/Stats that Replay verifies (always present).
	Manifest *Manifest
}

// Run executes one COMB measurement described by spec on a freshly built
// simulation and returns the worker's result plus hardware counters.  It
// is the single entry point behind the deprecated RunPolling*/RunPWW*
// helpers.  A cancelled ctx tears the simulation down mid-run and returns
// ctx.Err().
func Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	m, err := spec.method()
	if err != nil {
		return nil, err
	}
	cfg := platform.Config{Transport: spec.System, CPUs: spec.CPUs, Seed: spec.Seed}
	if spec.Faults != nil && !spec.Faults.Zero() {
		fs := *spec.Faults
		if fs.Seed == 0 {
			fs.Seed = spec.Seed
		}
		if err := fs.Validate(); err != nil {
			return nil, err
		}
		inner, err := transport.ByName(spec.System)
		if err != nil {
			return nil, err
		}
		cfg.Custom = faultinject.Wrap(inner, fs)
	}
	in, err := platform.New(cfg)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	var rec *trace.Recorder
	if spec.TraceCap > 0 {
		rec = trace.NewRecorder(spec.TraceCap)
		trace.AttachFabric(rec, in.Sys)
	}
	reg := obs.NewRegistry()
	var col *obs.Collector
	if spec.ObsCap != 0 {
		capacity := spec.ObsCap
		if capacity < 0 {
			capacity = 0 // NewCollector's default
		}
		col = obs.NewCollector(capacity, reg)
	}
	chk := invariant.Attach(in.Sys, in.Comms, invariant.Options{Trace: rec, Spans: col})
	out := &RunResult{}
	var ferr error
	err = in.RunContext(ctx, func(p *sim.Proc, c *mpi.Comm) {
		mach := machine.NewSim(p, c, in.Sys.Nodes[c.Rank()])
		if col != nil {
			mach.Observe(col)
		}
		switch m {
		case MethodPolling:
			r, err := core.RunPolling(mach, *spec.Polling)
			if err != nil {
				ferr = err
				return
			}
			if r != nil {
				out.Polling = r
			}
		case MethodPWW:
			r, err := core.RunPWW(mach, *spec.PWW)
			if err != nil {
				ferr = err
				return
			}
			if r != nil {
				out.PWW = r
			}
		}
	})
	if err == nil {
		err = ferr
	}
	if err != nil {
		return nil, err
	}
	if out.Polling == nil && out.PWW == nil {
		return nil, fmt.Errorf("comb: %s run produced no worker result", m)
	}
	chk.Finish()
	chk.CheckPolling(out.Polling)
	chk.CheckPWW(out.PWW)
	if verr := chk.Err(); verr != nil {
		replay := fmt.Sprintf("-seed %d", spec.Seed)
		if spec.Faults != nil && !spec.Faults.Zero() {
			replay += fmt.Sprintf(" -faults %q", spec.Faults.String())
		}
		return nil, fmt.Errorf("comb: %s/%s run broke the simulator (replay with %s): %w",
			m, spec.System, replay, verr)
	}
	out.Stats = snapshot(in)
	out.Trace = rec
	fillMetrics(reg, in, chk.Meter())
	out.Metrics = reg
	if col != nil {
		out.Obs = col.Capture()
		if rec != nil {
			for _, e := range rec.Events() {
				out.Obs.Instants = append(out.Obs.Instants, obs.Instant{
					At: time.Duration(e.At), Cat: string(e.Cat), Node: e.Node, Detail: e.Detail,
				})
			}
		}
	}
	out.Manifest, err = buildManifest(spec, m, out)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fillMetrics loads the end-of-run hardware and message counters into
// the registry (phase histograms accrue live via the span collector).
func fillMetrics(reg *obs.Registry, in *platform.Instance, meter *mpi.Meter) {
	msgHelp := "MPI messages, by kind."
	reg.Counter(`comb_messages_posted_total{kind="send"}`, msgHelp).Add(meter.PostedSends)
	reg.Counter(`comb_messages_posted_total{kind="recv"}`, msgHelp).Add(meter.PostedRecvs)
	reg.Counter(`comb_messages_completed_total{kind="send"}`, msgHelp).Add(meter.DoneSends)
	reg.Counter(`comb_messages_completed_total{kind="recv"}`, msgHelp).Add(meter.DoneRecvs)
	byteHelp := "Payload bytes of completed messages, by kind."
	reg.Counter(`comb_message_bytes_total{kind="send"}`, byteHelp).Add(meter.SentBytes)
	reg.Counter(`comb_message_bytes_total{kind="recv"}`, byteHelp).Add(meter.RecvBytes)

	pktHelp := "Fabric packets, by fate."
	packets, wireBytes, delivered := in.Sys.Fabric.Stats()
	injDrop, injDup := in.Sys.Fabric.InjectStats()
	reg.Counter(`comb_packets_total{fate="sent"}`, pktHelp).Add(packets)
	reg.Counter(`comb_packets_total{fate="delivered"}`, pktHelp).Add(delivered)
	reg.Counter(`comb_packets_total{fate="lost"}`, pktHelp).Add(in.Sys.Fabric.Lost())
	reg.Counter(`comb_packets_total{fate="injected_drop"}`, pktHelp).Add(injDrop)
	reg.Counter(`comb_packets_total{fate="injected_dup"}`, pktHelp).Add(injDup)
	reg.Counter("comb_wire_bytes_total", "Bytes put on the wire, headers included.").Add(wireBytes)
}

// hashedResult is the canonical serialization ResultHash covers: the
// method result plus the hardware counters, nothing host-dependent.
type hashedResult struct {
	Polling *PollingResult `json:"polling,omitempty"`
	PWW     *PWWResult     `json:"pww,omitempty"`
	Stats   *RunStats      `json:"stats"`
}

// buildManifest assembles the provenance record for a finished run.
func buildManifest(spec RunSpec, m Method, out *RunResult) (*Manifest, error) {
	mf := obs.NewManifest()
	mf.Method = string(m)
	mf.System = spec.System
	mf.CPUs = spec.CPUs
	mf.Seed = spec.Seed
	if spec.Faults != nil && !spec.Faults.Zero() {
		fs := *spec.Faults
		if fs.Seed == 0 {
			fs.Seed = spec.Seed
		}
		mf.Faults = fs.String()
		_, mf.MaskedFaults = fs.Masked(transport.ToleranceOf(spec.System))
	}
	mf.Tolerance = toleranceNames(transport.ToleranceOf(spec.System))
	if spec.Polling != nil {
		c := *spec.Polling
		c.SetDefaults()
		mf.Polling = &c
	}
	if spec.PWW != nil {
		c := *spec.PWW
		c.SetDefaults()
		mf.PWW = &c
	}
	var err error
	mf.ResultHash, err = obs.HashResult(hashedResult{Polling: out.Polling, PWW: out.PWW, Stats: out.Stats})
	return mf, err
}

// toleranceNames renders a transport tolerance as the manifest's sorted
// fault-name list.
func toleranceNames(t transport.Tolerance) []string {
	var out []string
	if t.Duplication {
		out = append(out, "dup")
	}
	if t.Loss {
		out = append(out, "loss")
	}
	if t.Reorder {
		out = append(out, "reorder")
	}
	return out
}

// SpecFromManifest reconstructs the RunSpec a manifest records, ready
// for Run.
func SpecFromManifest(mf *Manifest) (RunSpec, error) {
	spec := RunSpec{
		Method:  Method(mf.Method),
		System:  mf.System,
		CPUs:    mf.CPUs,
		Seed:    mf.Seed,
		Polling: mf.Polling,
		PWW:     mf.PWW,
	}
	if mf.Faults != "" {
		fs, err := faultinject.Parse(mf.Faults)
		if err != nil {
			return RunSpec{}, fmt.Errorf("comb: manifest faults: %w", err)
		}
		spec.Faults = &fs
	}
	if _, err := spec.method(); err != nil {
		return RunSpec{}, err
	}
	return spec, nil
}

// Replay re-executes the measurement a manifest records and verifies
// that the fresh result hashes to the manifest's ResultHash.  The fresh
// result is returned even on hash mismatch (alongside the error) so
// callers can diff the two runs.
func Replay(ctx context.Context, mf *Manifest) (*RunResult, error) {
	spec, err := SpecFromManifest(mf)
	if err != nil {
		return nil, err
	}
	res, err := Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	if mf.ResultHash != "" && res.Manifest.ResultHash != mf.ResultHash {
		return res, fmt.Errorf("comb: replay diverged: manifest result hash %s, this run %s",
			mf.ResultHash, res.Manifest.ResultHash)
	}
	return res, nil
}

// snapshot collects hardware counters from a finished instance.
func snapshot(in *platform.Instance) *RunStats {
	st := &RunStats{}
	st.Packets, st.WireBytes, _ = in.Sys.Fabric.Stats()
	for _, n := range in.Sys.Nodes {
		st.CPUs = append(st.CPUs, NodeCPU{
			Node:      n.ID,
			Cores:     n.CPU.Cores(),
			User:      time.Duration(n.CPU.Usage(cluster.User)),
			Kernel:    time.Duration(n.CPU.Usage(cluster.Kernel)),
			Interrupt: time.Duration(n.CPU.Usage(cluster.Interrupt)),
		})
	}
	return st
}

// RunPolling runs one polling-method measurement of the named system on a
// freshly built two-node simulation and returns the worker's result.
//
// Deprecated: use Run with a RunSpec{Method: MethodPolling}.
func RunPolling(system string, cfg PollingConfig) (*PollingResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPolling, System: system, Polling: &cfg})
	if err != nil {
		return nil, err
	}
	return res.Polling, nil
}

// RunPollingOn is RunPolling with a processors-per-node override.
//
// Deprecated: use Run with a RunSpec{Method: MethodPolling, CPUs: cpus}.
func RunPollingOn(system string, cpus int, cfg PollingConfig) (*PollingResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPolling, System: system, CPUs: cpus, Polling: &cfg})
	if err != nil {
		return nil, err
	}
	return res.Polling, nil
}

// RunPollingStats is RunPollingOn plus the hardware counters.
//
// Deprecated: use Run; RunResult.Stats is always populated.
func RunPollingStats(system string, cpus int, cfg PollingConfig) (*PollingResult, *RunStats, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPolling, System: system, CPUs: cpus, Polling: &cfg})
	if err != nil {
		return nil, nil, err
	}
	return res.Polling, res.Stats, nil
}

// RunPollingTraced is RunPollingStats plus a packet-level trace of the
// last traceCap fabric deliveries (nil recorder when traceCap is 0).
//
// Deprecated: use Run with RunSpec.TraceCap.
func RunPollingTraced(system string, cpus, traceCap int, cfg PollingConfig) (*PollingResult, *RunStats, *trace.Recorder, error) {
	res, err := Run(context.Background(), RunSpec{
		Method: MethodPolling, System: system, CPUs: cpus, TraceCap: traceCap, Polling: &cfg,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return res.Polling, res.Stats, res.Trace, nil
}

// RunPWW runs one post-work-wait measurement of the named system and
// returns the worker's result.
//
// Deprecated: use Run with a RunSpec{Method: MethodPWW}.
func RunPWW(system string, cfg PWWConfig) (*PWWResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPWW, System: system, PWW: &cfg})
	if err != nil {
		return nil, err
	}
	return res.PWW, nil
}

// RunPWWOn is RunPWW with a processors-per-node override; see
// RunSpec.CPUs.
//
// Deprecated: use Run with a RunSpec{Method: MethodPWW, CPUs: cpus}.
func RunPWWOn(system string, cpus int, cfg PWWConfig) (*PWWResult, error) {
	res, err := Run(context.Background(), RunSpec{Method: MethodPWW, System: system, CPUs: cpus, PWW: &cfg})
	if err != nil {
		return nil, err
	}
	return res.PWW, nil
}

// Figures lists every reproducible evaluation figure (paper Figures 4-17).
func Figures() []FigureSpec { return sweep.Figures() }

// BuildFigure regenerates the paper figure with the given number.  Quick
// mode shrinks the sweep for fast smoke runs.  Points execute in parallel
// on the sweep package's default engine; use BuildFigureContext for
// cancellation or a custom engine.
func BuildFigure(id string, quick bool) (*Table, error) {
	return BuildFigureContext(context.Background(), id, quick)
}

// BuildFigureContext is BuildFigure under a context: a cancelled ctx
// stops the sweep between (and inside) points.
func BuildFigureContext(ctx context.Context, id string, quick bool) (*Table, error) {
	f, err := sweep.ByID(id)
	if err != nil {
		return nil, err
	}
	return f.Build(sweep.Options{Quick: quick, Context: ctx})
}
