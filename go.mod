module comb

go 1.22
