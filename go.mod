module comb

go 1.24
