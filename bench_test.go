package comb

// One benchmark per figure (4-18): each iteration regenerates the
// figure's sweep in quick mode from scratch and reports the headline
// numbers the paper's plot shows, so `go test -bench .` doubles as a
// compact reproduction report.  The ablation benchmarks at the bottom
// vary the design parameters DESIGN.md calls out.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"comb/internal/cluster"
	"comb/internal/core"
	"comb/internal/machine"
	"comb/internal/method/collov"
	"comb/internal/method/halo"
	"comb/internal/platform"
	"comb/internal/runner"
	"comb/internal/serve"
	"comb/internal/sim"
	"comb/internal/stats"
	"comb/internal/sweep"
	"comb/internal/transport"
)

// benchFigure regenerates figure id once per iteration and reports the
// peak y value of each series.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	var tbl *Table
	for i := 0; i < b.N; i++ {
		sweep.ClearCache()
		var err error
		tbl, err = BuildFigure(id, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range tbl.Series {
		_, hi := s.YRange()
		b.ReportMetric(hi, "max_"+metricName(s.Name, tbl.YLabel))
	}
}

// metricName squashes a series name + unit into a metric suffix.
func metricName(series, ylabel string) string {
	unit := "y"
	switch {
	case strings.Contains(ylabel, "Bandwidth"):
		unit = "MBps"
	case strings.Contains(ylabel, "Availability"):
		unit = "avail"
	case strings.Contains(ylabel, "us"):
		unit = "us"
	}
	return strings.ReplaceAll(series, " ", "_") + "_" + unit
}

func BenchmarkFig04PollingAvailabilityPortals(b *testing.B) { benchFigure(b, "4") }
func BenchmarkFig05PollingBandwidthPortals(b *testing.B)    { benchFigure(b, "5") }
func BenchmarkFig06PWWAvailabilityPortals(b *testing.B)     { benchFigure(b, "6") }
func BenchmarkFig07PWWBandwidthPortals(b *testing.B)        { benchFigure(b, "7") }
func BenchmarkFig08PollingBandwidthGMvsPortals(b *testing.B) {
	benchFigure(b, "8")
}
func BenchmarkFig09PWWBandwidthGMvsPortals(b *testing.B) { benchFigure(b, "9") }
func BenchmarkFig10PWWPostTime(b *testing.B)             { benchFigure(b, "10") }
func BenchmarkFig11PWWWaitTime(b *testing.B)             { benchFigure(b, "11") }
func BenchmarkFig12WorkOverheadPortals(b *testing.B)     { benchFigure(b, "12") }
func BenchmarkFig13WorkOverheadGM(b *testing.B)          { benchFigure(b, "13") }
func BenchmarkFig14BandwidthVsAvailabilityGM(b *testing.B) {
	benchFigure(b, "14")
}
func BenchmarkFig15BandwidthVsAvailabilityPortals(b *testing.B) {
	benchFigure(b, "15")
}
func BenchmarkFig16MethodsGM(b *testing.B)         { benchFigure(b, "16") }
func BenchmarkFig17MethodsPlusTestGM(b *testing.B) { benchFigure(b, "17") }
func BenchmarkFig18CollectiveOverlap(b *testing.B) { benchFigure(b, "18") }

// bisectBenchCurve is the strategy benchmark's search target: the PWW
// availability-vs-work-interval curve on portals (the Figure 6
// relation), on a dense 33-points-per-decade axis where searching
// actually pays.
func bisectBenchCurve(eng *runner.Engine, axis []int64) sweep.Curve {
	return sweep.Curve{
		Name: "portals",
		Axis: axis,
		Eval: func(x int64, rep int) (float64, float64, error) {
			p := runner.Point{Method: "pww", System: "portals", Params: core.PWWConfig{
				Config:       core.Config{MsgSize: 100_000},
				WorkInterval: x,
				Reps:         20,
			}}
			p.Seed = sweep.RepSeed(0, rep)
			res, err := eng.Run(context.Background(), p)
			if err != nil {
				return 0, 0, err
			}
			r, ok := runner.As[*core.PWWResult](res)
			if !ok {
				return 0, 0, fmt.Errorf("pww point returned a %T result", res.Value)
			}
			return float64(x), r.Availability, nil
		},
	}
}

// BenchmarkFigBisectVsGrid measures the strategy layer's engine-run
// cut: finding the 0.5 availability crossover by bisection versus
// evaluating the dense axis.  The dense reference runs once outside the
// timed loop; every iteration pays a cold bisect search on a fresh
// engine.  It reports both run counts and their ratio, and fails if
// bisect lands outside the dense answer's ±1 grid step or spends more
// than 1/5 of the dense runs.
func BenchmarkFigBisectVsGrid(b *testing.B) {
	const target = 0.5
	axis := stats.LogSpaceInt(10_000, 10_000_000, 33)

	denseEng := runner.New(runner.Config{Workers: 4})
	dense, err := sweep.RunCurve(sweep.Options{Engine: denseEng}, bisectBenchCurve(denseEng, axis))
	if err != nil {
		b.Fatal(err)
	}
	denseRuns := denseEng.Stats().Runs
	denseCross := -1
	for i, p := range dense.Points {
		if p.Y >= target {
			denseCross = i
			break
		}
	}
	if denseCross < 0 {
		b.Fatalf("dense curve never crosses %g", target)
	}
	lo := dense.Points[denseCross].X
	if denseCross > 0 {
		lo = dense.Points[denseCross-1].X
	}
	hi := dense.Points[denseCross].X

	st, err := ParseStrategy("bisect:target=0.5")
	if err != nil {
		b.Fatal(err)
	}
	var bisRuns int64
	cross := -1.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := runner.New(runner.Config{Workers: 4})
		s, err := sweep.RunCurve(sweep.Options{Engine: eng, Strategy: st}, bisectBenchCurve(eng, axis))
		if err != nil {
			b.Fatal(err)
		}
		bisRuns = eng.Stats().Runs
		cross = -1
		for _, p := range s.Points {
			if p.Y >= target {
				cross = p.X
				break
			}
		}
	}
	b.StopTimer()
	if cross < lo || cross > hi {
		b.Fatalf("bisect crossover x=%g outside dense ±1 window [%g, %g]", cross, lo, hi)
	}
	if bisRuns*5 > denseRuns {
		b.Fatalf("bisect spent %d engine runs, dense %d — ratio %.1fx below the 5x floor",
			bisRuns, denseRuns, float64(denseRuns)/float64(bisRuns))
	}
	b.ReportMetric(float64(denseRuns), "dense_runs")
	b.ReportMetric(float64(bisRuns), "bisect_runs")
	b.ReportMetric(float64(denseRuns)/float64(bisRuns), "runs_ratio")
}

// benchPollingPoint is the unit benchmark behind the figures: one polling
// measurement per iteration.
func benchPollingPoint(b *testing.B, system string, size int, poll int64) {
	b.Helper()
	var res *PollingResult
	for i := 0; i < b.N; i++ {
		out, err := runPolling(system, 0, PollingConfig{
			Config:       Config{MsgSize: size},
			PollInterval: poll,
			WorkTotal:    25_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		res = out.Polling
	}
	b.ReportMetric(res.BandwidthMBs, "MBps")
	b.ReportMetric(res.Availability, "avail")
}

func BenchmarkPollingPoint(b *testing.B) {
	for _, system := range []string{"gm", "portals", "ideal"} {
		b.Run(system, func(b *testing.B) {
			benchPollingPoint(b, system, 100_000, 100_000)
		})
	}
}

func BenchmarkPWWPoint(b *testing.B) {
	for _, system := range []string{"gm", "portals", "ideal"} {
		b.Run(system, func(b *testing.B) {
			var res *PWWResult
			for i := 0; i < b.N; i++ {
				out, err := runPWW(system, 0, PWWConfig{
					Config:       Config{MsgSize: 100_000},
					WorkInterval: 1_000_000,
					Reps:         10,
				})
				if err != nil {
					b.Fatal(err)
				}
				res = out.PWW
			}
			b.ReportMetric(res.BandwidthMBs, "MBps")
			b.ReportMetric(res.AvgWait.Seconds()*1e6, "wait_us")
		})
	}
}

// --- Ablations (design choices from DESIGN.md §5) ---

// BenchmarkAblationQueueDepth shows the polling queue's effect: depth 1
// is the paper's degenerate ping-pong.
func BenchmarkAblationQueueDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			var res *PollingResult
			for i := 0; i < b.N; i++ {
				out, err := runPolling("gm", 0, PollingConfig{
					Config:       Config{MsgSize: 100_000},
					PollInterval: 10_000,
					WorkTotal:    25_000_000,
					QueueDepth:   depth,
				})
				if err != nil {
					b.Fatal(err)
				}
				res = out.Polling
			}
			b.ReportMetric(res.BandwidthMBs, "MBps")
		})
	}
}

// runCustom measures one PWW point on a hand-configured transport and/or
// platform.
func runCustom(b *testing.B, tr transport.Transport, plat *cluster.Platform, cfg core.PWWConfig) *core.PWWResult {
	b.Helper()
	var res *core.PWWResult
	err := machine.Run(platform.Config{Custom: tr, Platform: plat}, func(m core.Machine) {
		r, err := core.RunPWW(m, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r != nil {
			res = r
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationEagerThreshold moves GM's protocol switch across the
// 10 KB operating point: with a large threshold the 10 KB messages go
// eager (45 us sends, lower availability); with a small one they go
// rendezvous.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	for _, thresh := range []int{4 << 10, 16 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("thresh%dKB", thresh>>10), func(b *testing.B) {
			var res *core.PWWResult
			for i := 0; i < b.N; i++ {
				g := transport.NewGM()
				g.Config.EagerThreshold = thresh
				res = runCustom(b, g, nil, core.PWWConfig{
					Config:       core.Config{MsgSize: 10_000},
					WorkInterval: 10_000_000,
					Reps:         10,
				})
			}
			b.ReportMetric(res.AvgWait.Seconds()*1e6, "wait_us")
			b.ReportMetric(res.AvgPostSend.Seconds()*1e6, "post_us")
		})
	}
}

// BenchmarkAblationInterruptCost scales the Portals per-packet interrupt
// cost, which sets the availability plateau of Figure 4.
func BenchmarkAblationInterruptCost(b *testing.B) {
	for _, us := range []int{1, 7, 20} {
		b.Run(fmt.Sprintf("intr%dus", us), func(b *testing.B) {
			var avail float64
			for i := 0; i < b.N; i++ {
				p := transport.NewPortals()
				p.Config.InterruptCost = sim.Time(us) * sim.Microsecond
				res := runCustom(b, p, nil, core.PWWConfig{
					Config:       core.Config{MsgSize: 100_000},
					WorkInterval: 5_000_000,
					Reps:         10,
				})
				avail = res.Availability
			}
			b.ReportMetric(avail, "avail")
		})
	}
}

// BenchmarkAblationCopyBandwidth scales the host memcpy rate, which sets
// Portals' ~50 MB/s bandwidth ceiling (Figure 5).
func BenchmarkAblationCopyBandwidth(b *testing.B) {
	for _, mbps := range []float64{80, 160, 320} {
		b.Run(fmt.Sprintf("copy%.0fMBps", mbps), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				plat := cluster.PlatformPIII500()
				plat.CopyBandwidth = mbps * cluster.MB
				res := runCustom(b, transport.NewPortals(), &plat, core.PWWConfig{
					Config:       core.Config{MsgSize: 100_000},
					WorkInterval: 10_000,
					Reps:         10,
				})
				bw = res.BandwidthMBs
			}
			b.ReportMetric(bw, "MBps")
		})
	}
}

// BenchmarkAblationMTU scales the fabric MTU: smaller packets mean more
// per-packet NIC occupancy (lower GM bandwidth) and more Portals
// interrupts.
func BenchmarkAblationMTU(b *testing.B) {
	for _, mtu := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("mtu%d", mtu), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				plat := cluster.PlatformPIII500()
				plat.Link.MTU = mtu
				res := runCustom(b, transport.NewGM(), &plat, core.PWWConfig{
					Config:       core.Config{MsgSize: 300_000},
					WorkInterval: 10_000,
					Reps:         10,
				})
				bw = res.BandwidthMBs
			}
			b.ReportMetric(bw, "MBps")
		})
	}
}

// BenchmarkAblationPWWBatch varies the PWW batch size (the paper's
// earlier versions interleaved 3-4 message batches).
func BenchmarkAblationPWWBatch(b *testing.B) {
	for _, batch := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				out, err := runPWW("gm", 0, PWWConfig{
					Config:       Config{MsgSize: 100_000},
					WorkInterval: 10_000,
					Reps:         10,
					BatchSize:    batch,
				})
				if err != nil {
					b.Fatal(err)
				}
				bw = out.PWW.BandwidthMBs
			}
			b.ReportMetric(bw, "MBps")
		})
	}
}

// BenchmarkSimulatorThroughput measures the discrete-event engine itself:
// simulated events per wall second under a Portals polling load.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runPolling("portals", 0, PollingConfig{
			Config:       Config{MsgSize: 100_000},
			PollInterval: 10_000,
			WorkTotal:    25_000_000,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serve benchmarks (docs/SERVING.md; guarded by benchdiff) ---

// serveBenchSpec is one submittable polling point; varying workTotal
// varies the cache key, so cold-cache iterations never dedupe.
func serveBenchSpec(workTotal int64) []byte {
	return []byte(fmt.Sprintf(
		`{"specVersion": 1, "method": "polling", "system": "ideal", "polling": {"PollInterval": 1000, "WorkTotal": %d}}`,
		workTotal))
}

// serveSubmitWait drives the full client path: POST the spec, long-poll
// the job to a terminal state, fail unless it is done.
func serveSubmitWait(base string, body []byte) error {
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var v serve.View
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	for !v.State.Terminal() {
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait=30s&since=%d", base, v.ID, v.Version))
		if err != nil {
			return err
		}
		err = json.NewDecoder(r.Body).Decode(&v)
		r.Body.Close()
		if err != nil {
			return err
		}
	}
	if v.State != serve.StateDone {
		return fmt.Errorf("job %s: %s: %s", v.ID, v.State, v.Error)
	}
	return nil
}

// benchServeClients runs one op = `clients` concurrent submit+wait
// round trips against srv over real HTTP.
func benchServeClients(b *testing.B, srv *serve.Server, clients int, body func(iter, client int) []byte) {
	b.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				errs[c] = serveSubmitWait(ts.URL, body(i, c))
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServeHotCacheClients: 8 clients submit the identical spec
// against a pre-warmed store — pure service overhead, zero simulations.
func BenchmarkServeHotCacheClients(b *testing.B) {
	srv := serve.New(serve.Config{Store: serve.OpenStore(b.TempDir()), QueueCap: 256})
	defer srv.Close()
	warm := httptest.NewServer(srv.Handler())
	if err := serveSubmitWait(warm.URL, serveBenchSpec(5_000_000)); err != nil {
		b.Fatal(err)
	}
	warm.Close()
	benchServeClients(b, srv, 8, func(_, _ int) []byte {
		return serveBenchSpec(5_000_000)
	})
}

// BenchmarkServeColdCacheClients: 8 clients each submit a distinct spec
// with no store — every submission pays a full simulation.
func BenchmarkServeColdCacheClients(b *testing.B) {
	srv := serve.New(serve.Config{QueueCap: 256})
	defer srv.Close()
	benchServeClients(b, srv, 8, func(iter, client int) []byte {
		return serveBenchSpec(5_000_000 + int64(iter*8+client)*64)
	})
}

// BenchmarkAblationInterleave reproduces the paper's earlier PWW variant:
// keeping several batches in flight sustains bandwidth into larger work
// intervals (and reintroduces library progress on GM).
func BenchmarkAblationInterleave(b *testing.B) {
	for _, il := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("interleave%d", il), func(b *testing.B) {
			var res *PWWResult
			for i := 0; i < b.N; i++ {
				out, err := runPWW("gm", 0, PWWConfig{
					Config:       Config{MsgSize: 100_000},
					WorkInterval: 2_000_000,
					Reps:         20,
					Interleave:   il,
				})
				if err != nil {
					b.Fatal(err)
				}
				res = out.PWW
			}
			b.ReportMetric(res.BandwidthMBs, "MBps")
			b.ReportMetric(res.Availability, "avail")
		})
	}
}

// benchDESNodes runs one full polling measurement per iteration on an
// n-node cluster, with the serial or the conservative parallel engine.
// The 2-node pairs pin "parallel never regresses the classic topology"
// (SimWorkers falls back to serial there); the 8-node pairs measure the
// engine's actual speedup, which scripts/benchdiff.sh and the
// internal/perf speedup test guard.
func benchDESNodes(b *testing.B, nodes, simJ int) {
	b.Helper()
	spec := RunSpec{
		Method: MethodPolling,
		System: "gm",
		Nodes:  nodes,
		Polling: &PollingConfig{
			Config:       Config{MsgSize: 100_000},
			PollInterval: 100_000,
			WorkTotal:    25_000_000,
		},
		SimWorkers: simJ,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDESNodes2Serial(b *testing.B)   { benchDESNodes(b, 0, 0) }
func BenchmarkDESNodes2Parallel(b *testing.B) { benchDESNodes(b, 0, 4) }
func BenchmarkDESNodes8Serial(b *testing.B)   { benchDESNodes(b, 8, 0) }
func BenchmarkDESNodes8Parallel(b *testing.B) { benchDESNodes(b, 8, 4) }

// runCollov runs one collective-overlap measurement through the facade.
func runCollov(system string, nodes int, p collov.Params) (*collov.Result, error) {
	out, err := Run(context.Background(), RunSpec{
		Method: MethodCollov, System: system, Nodes: nodes, Params: p,
	})
	if err != nil {
		return nil, err
	}
	return out.Value.(*collov.Result), nil
}

// BenchmarkCollovNodes8 times one full 8-rank max-work-injection search
// (allreduce, bisect) per iteration: the whole multi-rank stack — tree
// collectives, nonblocking initiation, the rank-0 coordinated search —
// in one number.
func BenchmarkCollovNodes8(b *testing.B) {
	var res *collov.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := runCollov("gm", 8, collov.Params{Collective: "allreduce", MsgSize: 16 * 1024, Reps: 2, WorkGrid: 16})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.OverlapFraction, "overlap")
	b.ReportMetric(float64(res.Probes), "probes")
}

// BenchmarkHaloNodes8 times one full 8-rank 2D stencil halo exchange
// per iteration (post-work-wait progress on a 4x2 torus).
func BenchmarkHaloNodes8(b *testing.B) {
	var res *halo.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Run(context.Background(), RunSpec{
			Method: MethodHalo, System: "gm", Nodes: 8,
			Params: halo.Params{MsgSize: 8 * 1024, Iters: 8, WorkIters: 200_000},
		})
		if err != nil {
			b.Fatal(err)
		}
		res = out.Value.(*halo.Result)
	}
	b.ReportMetric(res.Availability, "avail")
	b.ReportMetric(res.BandwidthMBs, "MBps")
}

// BenchmarkCollovBisectVsGrid measures the collov search's engine-run
// cut: the dense grid measures every work level (WorkGrid+1 probes),
// bisection finds the same crossing in O(log n) rounds.  The dense
// reference runs once outside the timed loop; the gate demands bisect
// spend at most 1/3 of the grid's probes and land on the same answer.
func BenchmarkCollovBisectVsGrid(b *testing.B) {
	p := collov.Params{Collective: "allreduce", MsgSize: 16 * 1024, Reps: 2, WorkGrid: 32}
	p.Search = "grid"
	dense, err := runCollov("gm", 4, p)
	if err != nil {
		b.Fatal(err)
	}
	p.Search = "bisect"
	var res *collov.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = runCollov("gm", 4, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res.MaxWorkIters != dense.MaxWorkIters {
		b.Fatalf("bisect found max work %d, dense grid %d", res.MaxWorkIters, dense.MaxWorkIters)
	}
	if res.Probes*3 > dense.Probes {
		b.Fatalf("bisect spent %d probes, grid %d — above the 1/3 ceiling", res.Probes, dense.Probes)
	}
	b.ReportMetric(float64(dense.Probes), "grid_probes")
	b.ReportMetric(float64(res.Probes), "bisect_probes")
	b.ReportMetric(float64(dense.Probes)/float64(res.Probes), "probe_ratio")
}
