package comb

import (
	"context"
	"testing"

	"comb/internal/method/collov"
	"comb/internal/method/halo"
	"comb/internal/netperf"
	"comb/internal/pingpong"
)

// parallelCases enumerates every node-scaling method with a small
// 8-node workload; TestParallelEquality crosses them with every
// registered system.
func parallelCases() []struct {
	name string
	spec RunSpec
} {
	return []struct {
		name string
		spec RunSpec
	}{
		{"polling", RunSpec{
			Method: MethodPolling,
			Nodes:  8,
			Polling: &PollingConfig{
				Config:       Config{MsgSize: 50_000},
				PollInterval: 50_000,
				WorkTotal:    2_000_000,
			},
		}},
		{"pww", RunSpec{
			Method: MethodPWW,
			Nodes:  8,
			PWW: &PWWConfig{
				Config:       Config{MsgSize: 20_000},
				WorkInterval: 100_000,
				Reps:         3,
			},
		}},
		{"pingpong", RunSpec{
			Method: MethodPingpong,
			Nodes:  8,
			Params: pingpong.Params{MsgSize: 8192, Reps: 5},
		}},
		{"collov", RunSpec{
			Method: MethodCollov,
			Nodes:  8,
			Params: collov.Params{MsgSize: 16_384, Reps: 2, WorkGrid: 8},
		}},
		{"halo", RunSpec{
			Method: MethodHalo,
			Nodes:  8,
			Params: halo.Params{MsgSize: 8192, Iters: 4, WorkIters: 50_000},
		}},
	}
}

// TestParallelEquality is the acceptance bar for the conservative
// parallel engine: on every method × transport, an 8-node run with
// SimWorkers > 1 must produce a result hash identical to the serial
// engine's — same goldens, same manifests, same cache entries.
func TestParallelEquality(t *testing.T) {
	ctx := context.Background()
	for _, c := range parallelCases() {
		for _, sys := range Systems() {
			t.Run(c.name+"/"+sys, func(t *testing.T) {
				serial := c.spec
				serial.System = sys
				sout, err := Run(ctx, serial)
				if err != nil {
					t.Fatal(err)
				}
				par := serial
				par.SimWorkers = 4
				pout, err := Run(ctx, par)
				if err != nil {
					t.Fatal(err)
				}
				if sout.Manifest.ResultHash != pout.Manifest.ResultHash {
					t.Errorf("parallel run diverged from serial:\n  serial:   %s\n  parallel: %s\n  serial result:   %s\n  parallel result: %s",
						sout.Manifest.ResultHash, pout.Manifest.ResultHash, sout.Value, pout.Value)
				}
				// The parallel engine must actually have engaged, not
				// silently fallen back: every transport's link has positive
				// lookahead, so the window counter must be present and hot.
				if n := windowCounter(pout, "comb_sim_window_advanced_total"); n <= 0 {
					t.Errorf("parallel run advanced %d windows; engine did not engage", n)
				}
				if windowCounter(sout, "comb_sim_window_advanced_total") != 0 {
					t.Error("serial run must not report window metrics")
				}
			})
		}
	}
}

// windowCounter reads a window-engine counter from a finished run's
// metric registry (0 when absent, i.e. the serial engine ran).
func windowCounter(out *RunResult, name string) int64 {
	for _, c := range out.Metrics.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestParallelFallsBackOnTwoNodes: SimWorkers on the classic 2-node
// topology is a silent no-op — partitioning two nodes cannot win, so the
// serial engine runs and no window metrics appear.
func TestParallelFallsBackOnTwoNodes(t *testing.T) {
	s := pollingSpec()
	s.SimWorkers = 4
	out, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if n := windowCounter(out, "comb_sim_window_advanced_total"); n != 0 {
		t.Errorf("2-node run reported %d windows; must fall back to serial", n)
	}

	base, err := Run(context.Background(), pollingSpec())
	if err != nil {
		t.Fatal(err)
	}
	if base.Manifest.ResultHash != out.Manifest.ResultHash {
		t.Errorf("fallback hash %s != serial hash %s", out.Manifest.ResultHash, base.Manifest.ResultHash)
	}
}

// TestParallelTraceForcesSerial: packet tracing hooks the fabric from
// the delivering partition, so TraceCap forces the serial engine.
func TestParallelTraceForcesSerial(t *testing.T) {
	s := parallelCases()[0].spec
	s.System = "gm"
	s.SimWorkers = 4
	s.TraceCap = 8
	out, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || out.Trace.Len() == 0 {
		t.Fatal("TraceCap run recorded no deliveries")
	}
	if n := windowCounter(out, "comb_sim_window_advanced_total"); n != 0 {
		t.Errorf("traced run reported %d windows; tracing must force serial", n)
	}
}

// TestNodesNeedsNodeScaler: methods without multi-pair support (netperf)
// reject Nodes > 2 at validation time.
func TestNodesNeedsNodeScaler(t *testing.T) {
	_, err := Run(context.Background(), RunSpec{
		Method: "netperf",
		System: "tcp",
		Nodes:  8,
		Params: netperf.Params{Mode: "select", MsgSize: 16384, LoopIters: 100_000},
	})
	if err == nil {
		t.Fatal("netperf with 8 nodes must be rejected")
	}
}

// TestNodesMustBeEven: pair-structured methods reject odd cluster sizes.
func TestNodesMustBeEven(t *testing.T) {
	s := pollingSpec()
	s.Nodes = 5
	if _, err := Run(context.Background(), s); err == nil {
		t.Fatal("odd node count must be rejected")
	}
}
