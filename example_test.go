package comb_test

import (
	"context"
	"fmt"

	"comb"
)

// The polling method reports bandwidth and CPU availability as functions
// of how often the application polls for completions.  Simulation runs
// are deterministic, so this example's output is exact.
func ExampleRun() {
	out, err := comb.Run(context.Background(), comb.RunSpec{
		Method: comb.MethodPolling,
		System: "gm",
		Polling: &comb.PollingConfig{
			Config:       comb.Config{MsgSize: 100_000},
			PollInterval: 100_000,
			WorkTotal:    25_000_000,
		},
	})
	if err != nil {
		panic(err)
	}
	res := out.Polling
	fmt.Printf("%.1f MB/s at availability %.2f\n", res.BandwidthMBs, res.Availability)
	// Output: 86.2 MB/s at availability 0.98
}

// The post-work-wait method detects application offload: with a long
// no-MPI-call work phase, GM's wait stays at a full transfer time while
// Portals' drops to a flag check.
func ExampleRun_postWorkWait() {
	for _, system := range []string{"gm", "portals"} {
		out, err := comb.Run(context.Background(), comb.RunSpec{
			Method: comb.MethodPWW,
			System: system,
			PWW: &comb.PWWConfig{
				Config:       comb.Config{MsgSize: 100_000},
				WorkInterval: 20_000_000,
				Reps:         10,
			},
		})
		if err != nil {
			panic(err)
		}
		res := out.PWW
		offload := "no offload"
		if res.AvgWait < res.AvgWorkOnly/100 {
			offload = "application offload"
		}
		fmt.Printf("%s: wait %v/msg -> %s\n", system, res.AvgWait, offload)
	}
	// Output:
	// gm: wait 1.170648ms/msg -> no offload
	// portals: wait 125ns/msg -> application offload
}

// Every evaluation figure of the paper can be regenerated as a data
// table; quick mode shrinks the sweep.
func ExampleBuildFigure() {
	tbl, err := comb.BuildFigure("13", true)
	if err != nil {
		panic(err)
	}
	fmt.Println(tbl.Title)
	fmt.Println(len(tbl.Series), "series:", tbl.Series[0].Name, "/", tbl.Series[1].Name)
	// Output:
	// Figure 13: PWW Method: CPU Overhead for GM
	// 2 series: Work with MH / Work Only
}

// Systems lists the simulated messaging stacks available for comparison.
func ExampleSystems() {
	fmt.Println(comb.Systems())
	// Output: [emp gm ideal portals tcp]
}
