package main

import (
	"io"
	"os"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	out, rerr := io.ReadAll(r)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	return string(out)
}

// TestMethodsMatrixGolden pins the `comb methods` capability matrix
// byte for byte: a new method, a renamed capability column, or a method
// gaining/losing an optional interface must show up here.
func TestMethodsMatrixGolden(t *testing.T) {
	got := captureStdout(t, cmdMethods)
	want := `method     calib  check  relax  fuzz  flags  nodes  description
collov     -      x      -      x     x      x      collective/computation overlap via max-work-injection (allreduce or bcast)
           phases: ref, probe
halo       -      x      -      x     x      x      2D stencil halo exchange on a rank torus: polling vs post-work-wait progress
           phases: exchange
netperf    -      x      x      x     x      -      delay loop sharing a node with a message stream: the availability misreporter (paper §5)
           phases: dry, loop
pingpong   -      x      -      x     x      x      blocking send/recv round trips: the latency and bandwidth baseline
           phases: exchange
polling    x      x      -      x     x      x      work chunks interleaved with completion polls at a swept poll interval (paper §2.1)
           phases: dry, work, poll, drain
pww        x      x      -      x     x      x      post-work-wait cycles timing each MPI call around a work phase (paper §2.2; -test plants the §4.3 rescue call)
           phases: dry, post, work, wait
`
	if got != want {
		t.Errorf("comb methods output drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
