package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comb"
	"comb/internal/obs"
	"comb/internal/stats"
	"comb/internal/sweep"
)

func TestSweepPointMetrics(t *testing.T) {
	for _, metric := range []string{"bandwidth", "availability"} {
		v, err := sweepPoint("polling", metric, "gm", 100_000, 1_000_000)
		if err != nil {
			t.Fatalf("polling %s: %v", metric, err)
		}
		if v <= 0 {
			t.Errorf("polling %s = %v", metric, v)
		}
	}
	for _, metric := range []string{"bandwidth", "availability", "wait", "overhead", "postrecv"} {
		v, err := sweepPoint("pww", metric, "portals", 100_000, 1_000_000)
		if err != nil {
			t.Fatalf("pww %s: %v", metric, err)
		}
		if v < 0 {
			t.Errorf("pww %s = %v", metric, v)
		}
	}
}

func TestSweepPointErrors(t *testing.T) {
	if _, err := sweepPoint("polling", "wait", "gm", 1000, 1000); err == nil {
		t.Error("polling has no wait metric")
	}
	if _, err := sweepPoint("pww", "nosuch", "gm", 1000, 1000); err == nil {
		t.Error("unknown metric must fail")
	}
	if _, err := sweepPoint("nosuch", "bandwidth", "gm", 1000, 1000); err == nil {
		t.Error("unknown method must fail")
	}
	if _, err := sweepPoint("polling", "bandwidth", "nosuch", 1000, 1000); err == nil {
		t.Error("unknown system must fail")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tbl := &stats.Table{
		XLabel: "x", YLabel: "y",
		Series: []stats.Series{{Name: "s", Points: []stats.Point{{X: 1, Y: 2}}}},
	}
	f := sweep.Figure{ID: "7", Title: "test figure"}
	if err := writeCSV(dir, f, tbl, true, 3, obs.NewRegistry()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig07.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "series,x,y") {
		t.Fatalf("csv content: %q", b)
	}
	mb, err := os.ReadFile(filepath.Join(dir, "fig07.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var mf obs.FigureManifest
	if err := json.Unmarshal(mb, &mf); err != nil {
		t.Fatal(err)
	}
	if mf.Figure != "7" || !mf.Quick || mf.Points != 3 {
		t.Fatalf("manifest fields: %+v", mf)
	}
	if mf.CSVSHA256 != obs.HashBytes(b) {
		t.Fatalf("csv hash mismatch: manifest %s, file %s", mf.CSVSHA256, obs.HashBytes(b))
	}
}

func TestCommandFunctions(t *testing.T) {
	// The plumbing-level command handlers, driven directly.  -no-cache and
	// -obs-dir keep test runs from writing results/ into the repo.
	ctx := context.Background()
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
	if err := cmdPolling(ctx, []string{"-system", "ideal", "-work", "5000000",
		"-obs-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPWW(ctx, []string{"-system", "ideal", "-reps", "3",
		"-obs-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFigure(ctx, []string{"-no-cache"}); err == nil {
		t.Fatal("figure without args must fail")
	}
	if err := cmdFigure(ctx, []string{"-quick", "-chart=false", "-no-cache", "13"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAssess(ctx, []string{"-no-cache"}); err == nil {
		t.Fatal("assess without args must fail")
	}
	if err := cmdSweep(ctx, []string{"-systems", "ideal", "-from", "100000", "-to", "1000000",
		"-points", "1", "-chart=false", "-no-cache"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep(ctx, []string{"-sizes", "abc", "-no-cache"}); err == nil {
		t.Fatal("bad sizes must fail")
	}
	if err := cmdSweep(ctx, []string{"-method", "bogus", "-no-cache"}); err == nil {
		t.Fatal("bad method must fail")
	}
	if err := cmdPingpong(ctx, []string{"-systems", "ideal", "-reps", "3", "-no-cache"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMethods(); err != nil {
		t.Fatal(err)
	}
}

// TestRunSpecFile drives `run -spec <file.json>`: the CLI executes the
// same versioned document the serve API accepts.
func TestRunSpecFile(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sp := comb.RunSpec{
		Method: comb.MethodPWW,
		System: "ideal",
		PWW:    &comb.PWWConfig{WorkInterval: 1_000_000, Reps: 3},
	}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun(ctx, []string{"-spec", path, "-obs-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, obs.ManifestFile)); err != nil {
		t.Fatalf("spec-file run must write artifacts: %v", err)
	}

	// A document with the wrong schema version is refused with the typed
	// error's message, not silently run.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"specVersion":99,"method":"pww"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdRun(ctx, []string{"-spec", bad, "-obs-dir", ""})
	if err == nil || !strings.Contains(err.Error(), "specVersion") {
		t.Fatalf("wrong-version spec error = %v", err)
	}
}

func TestRunMethodDispatch(t *testing.T) {
	// `run -method <name>` resolves through the registry; every registered
	// method with flags is drivable, and unknown names fail loudly.
	ctx := context.Background()
	if err := cmdRun(ctx, []string{"-method", "pingpong", "-system", "ideal",
		"-reps", "2", "-obs-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun(ctx, []string{"-method", "netperf", "-system", "ideal",
		"-loop", "1000000", "-obs-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun(ctx, []string{"-method", "nosuchmethod"}); err == nil {
		t.Fatal("unknown -method must fail")
	}
}

// TestObsLifecycle drives the full observability loop through the CLI:
// run → artifacts on disk → trace export (chrome + text) → metrics →
// replay with hash verification.
func TestObsLifecycle(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	if err := cmdRun(ctx, []string{"-method", "pww", "-system", "ideal", "-reps", "3",
		"-obs-dir", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{obs.TraceFile, obs.MetricsPromFile, obs.MetricsJSONFile, obs.ManifestFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
	}

	chromePath := filepath.Join(dir, "chrome.json")
	if err := cmdTrace([]string{"export", "-format=chrome", "-run", dir, "-o", chromePath}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no trace events")
	}
	if err := cmdTrace([]string{"export", "-format=text", "-run", dir, "-o", filepath.Join(dir, "trace.txt")}); err != nil {
		t.Fatal(err)
	}

	if err := cmdMetrics([]string{"-run", dir, "-format", "prom"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMetrics([]string{"-run", dir, "-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMetrics([]string{"-run", dir, "-format", "bogus"}); err == nil {
		t.Fatal("bogus metrics format must fail")
	}

	if err := cmdReplay(ctx, []string{"-manifest", filepath.Join(dir, obs.ManifestFile)}); err != nil {
		t.Fatalf("replay must reproduce the recorded hash: %v", err)
	}

	if err := cmdRun(ctx, nil); err == nil {
		t.Fatal("run without -method or -spec must fail")
	}
	if err := cmdRun(ctx, []string{"-spec", filepath.Join(dir, "nosuch.json")}); err == nil {
		t.Fatal("missing spec file must fail")
	}
	if err := cmdRun(ctx, []string{"-method", "pww", "-spec", "x.json"}); err == nil {
		t.Fatal("-method and -spec together must fail")
	}
	if err := cmdTrace(nil); err == nil {
		t.Fatal("trace without subcommand must fail")
	}
	if err := cmdTrace([]string{"export", "-run", t.TempDir()}); err == nil {
		t.Fatal("trace export without a capture must fail")
	}
}

func TestCacheCommand(t *testing.T) {
	dir := t.TempDir()
	if err := cmdCache([]string{"stat", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCache([]string{"clear", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCache(nil); err == nil {
		t.Fatal("cache without args must fail")
	}
	if err := cmdCache([]string{"bogus"}); err == nil {
		t.Fatal("unknown cache subcommand must fail")
	}
}
