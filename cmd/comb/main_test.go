package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comb"
	"comb/internal/obs"
	"comb/internal/runner"
	"comb/internal/stats"
	"comb/internal/sweep"
)

// sweepMetricAt runs one custom-sweep point on a throwaway engine and
// extracts the metric, mirroring cmdSweep's curve evaluator.
func sweepMetricAt(t *testing.T, meth, metric, sys string, size int, x int64) (float64, error) {
	t.Helper()
	res, err := runner.New(runner.Config{}).Run(context.Background(), sweepPointSpec(meth, sys, size, 0, x))
	if err != nil {
		return 0, err
	}
	return sweepMetric(meth, metric, res)
}

func TestSweepPointMetrics(t *testing.T) {
	for _, metric := range []string{"bandwidth", "availability"} {
		v, err := sweepMetricAt(t, "polling", metric, "gm", 100_000, 1_000_000)
		if err != nil {
			t.Fatalf("polling %s: %v", metric, err)
		}
		if v <= 0 {
			t.Errorf("polling %s = %v", metric, v)
		}
	}
	for _, metric := range []string{"bandwidth", "availability", "wait", "overhead", "postrecv"} {
		v, err := sweepMetricAt(t, "pww", metric, "portals", 100_000, 1_000_000)
		if err != nil {
			t.Fatalf("pww %s: %v", metric, err)
		}
		if v < 0 {
			t.Errorf("pww %s = %v", metric, v)
		}
	}
}

func TestSweepPointErrors(t *testing.T) {
	if _, err := sweepMetricAt(t, "polling", "wait", "gm", 1000, 1000); err == nil {
		t.Error("polling has no wait metric")
	}
	if _, err := sweepMetricAt(t, "pww", "nosuch", "gm", 1000, 1000); err == nil {
		t.Error("unknown metric must fail")
	}
	if _, err := sweepMetric("nosuch", "bandwidth", &runner.Result{}); err == nil {
		t.Error("unknown method must fail")
	}
	if _, err := sweepMetricAt(t, "polling", "bandwidth", "nosuch", 1000, 1000); err == nil {
		t.Error("unknown system must fail")
	}
}

func TestParseStrategyFlag(t *testing.T) {
	if st, err := parseStrategy(""); err != nil || st != nil {
		t.Errorf("empty -strategy = %v, %v; want nil, nil", st, err)
	}
	if st, err := parseStrategy("grid"); err != nil || st != nil {
		t.Errorf("-strategy grid = %v, %v; want nil, nil (grid is the zero value)", st, err)
	}
	st, err := parseStrategy("bisect:target=0.25")
	if err != nil || st == nil || st.Target != 0.25 {
		t.Errorf("-strategy bisect:target=0.25 = %v, %v", st, err)
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Error("unknown strategy must fail")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tbl := &stats.Table{
		XLabel: "x", YLabel: "y",
		Series: []stats.Series{{Name: "s", Points: []stats.Point{{X: 1, Y: 2}}}},
	}
	f := sweep.Figure{ID: "7", Title: "test figure"}
	if err := writeCSV(dir, f, tbl, true, 3, obs.NewRegistry(), nil, 0, 0); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig07.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "series,x,y") {
		t.Fatalf("csv content: %q", b)
	}
	mb, err := os.ReadFile(filepath.Join(dir, "fig07.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var mf obs.FigureManifest
	if err := json.Unmarshal(mb, &mf); err != nil {
		t.Fatal(err)
	}
	if mf.Figure != "7" || !mf.Quick || mf.Points != 3 {
		t.Fatalf("manifest fields: %+v", mf)
	}
	if mf.CSVSHA256 != obs.HashBytes(b) {
		t.Fatalf("csv hash mismatch: manifest %s, file %s", mf.CSVSHA256, obs.HashBytes(b))
	}
	if mf.Strategy != "" || mf.PointsEvaluated != 0 || mf.PointsSkipped != 0 {
		t.Fatalf("grid manifest must not carry strategy provenance: %+v", mf)
	}

	// A searched build stamps its strategy and point accounting into the
	// manifest and the regenerating command.
	st, err := comb.ParseStrategy("bisect:target=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCSV(dir, f, tbl, false, 3, nil, st, 9, 8); err != nil {
		t.Fatal(err)
	}
	mb, err = os.ReadFile(filepath.Join(dir, "fig07.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mb, &mf); err != nil {
		t.Fatal(err)
	}
	if mf.Strategy != st.String() || mf.PointsEvaluated != 9 || mf.PointsSkipped != 8 {
		t.Fatalf("strategy provenance: %+v", mf)
	}
	if !strings.Contains(mf.Command, "-strategy "+st.String()) {
		t.Fatalf("command must reproduce the strategy: %q", mf.Command)
	}
}

func TestCommandFunctions(t *testing.T) {
	// The plumbing-level command handlers, driven directly.  -no-cache and
	// -obs-dir keep test runs from writing results/ into the repo.
	ctx := context.Background()
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
	if err := cmdPolling(ctx, []string{"-system", "ideal", "-work", "5000000",
		"-obs-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPWW(ctx, []string{"-system", "ideal", "-reps", "3",
		"-obs-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFigure(ctx, []string{"-no-cache"}); err == nil {
		t.Fatal("figure without args must fail")
	}
	if err := cmdFigure(ctx, []string{"-quick", "-chart=false", "-no-cache", "13"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFigure(ctx, []string{"-quick", "-chart=false", "-no-cache",
		"-strategy", "knee:budget=4", "13"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAssess(ctx, []string{"-no-cache"}); err == nil {
		t.Fatal("assess without args must fail")
	}
	if err := cmdSweep(ctx, []string{"-systems", "ideal", "-from", "100000", "-to", "1000000",
		"-points", "1", "-chart=false", "-no-cache"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep(ctx, []string{"-systems", "ideal", "-method", "pww", "-metric", "availability",
		"-from", "100000", "-to", "10000000", "-points", "2", "-chart=false", "-no-cache",
		"-strategy", "bisect:target=0.5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep(ctx, []string{"-strategy", "bogus", "-no-cache"}); err == nil {
		t.Fatal("unknown -strategy must fail")
	}
	if err := cmdSweep(ctx, []string{"-sizes", "abc", "-no-cache"}); err == nil {
		t.Fatal("bad sizes must fail")
	}
	if err := cmdSweep(ctx, []string{"-method", "bogus", "-no-cache"}); err == nil {
		t.Fatal("bad method must fail")
	}
	if err := cmdPingpong(ctx, []string{"-systems", "ideal", "-reps", "3", "-no-cache"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMethods(); err != nil {
		t.Fatal(err)
	}
}

// TestRunSpecFile drives `run -spec <file.json>`: the CLI executes the
// same versioned document the serve API accepts.
func TestRunSpecFile(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sp := comb.RunSpec{
		Method: comb.MethodPWW,
		System: "ideal",
		PWW:    &comb.PWWConfig{WorkInterval: 1_000_000, Reps: 3},
	}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun(ctx, []string{"-spec", path, "-obs-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, obs.ManifestFile)); err != nil {
		t.Fatalf("spec-file run must write artifacts: %v", err)
	}

	// The -spec argument also accepts an inline JSON document — the form
	// selfcheck replay lines quote, no temp file needed.
	if err := cmdRun(ctx, []string{"-spec", string(b), "-obs-dir", ""}); err != nil {
		t.Fatalf("inline spec document: %v", err)
	}

	// A -strategy stamp lands in the provenance manifest and survives the
	// replay round trip (manifest → spec → identical result hash).
	sdir := t.TempDir()
	if err := cmdRun(ctx, []string{"-method", "pww", "-system", "ideal", "-reps", "3",
		"-strategy", "bisect:target=0.5", "-obs-dir", sdir}); err != nil {
		t.Fatal(err)
	}
	mf, err := obs.LoadManifest(filepath.Join(sdir, obs.ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	want, err := comb.ParseStrategy("bisect:target=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if mf.Strategy != want.String() {
		t.Fatalf("manifest strategy = %q, want %q", mf.Strategy, want.String())
	}
	if err := cmdReplay(ctx, []string{"-manifest", filepath.Join(sdir, obs.ManifestFile)}); err != nil {
		t.Fatalf("strategy-stamped manifest must replay: %v", err)
	}

	// A document with the wrong schema version is refused with the typed
	// error's message, not silently run.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"specVersion":99,"method":"pww"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdRun(ctx, []string{"-spec", bad, "-obs-dir", ""})
	if err == nil || !strings.Contains(err.Error(), "specVersion") {
		t.Fatalf("wrong-version spec error = %v", err)
	}
}

func TestRunMethodDispatch(t *testing.T) {
	// `run -method <name>` resolves through the registry; every registered
	// method with flags is drivable, and unknown names fail loudly.
	ctx := context.Background()
	if err := cmdRun(ctx, []string{"-method", "pingpong", "-system", "ideal",
		"-reps", "2", "-obs-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun(ctx, []string{"-method", "netperf", "-system", "ideal",
		"-loop", "1000000", "-obs-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun(ctx, []string{"-method", "nosuchmethod"}); err == nil {
		t.Fatal("unknown -method must fail")
	}
}

// TestObsLifecycle drives the full observability loop through the CLI:
// run → artifacts on disk → trace export (chrome + text) → metrics →
// replay with hash verification.
func TestObsLifecycle(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	if err := cmdRun(ctx, []string{"-method", "pww", "-system", "ideal", "-reps", "3",
		"-obs-dir", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{obs.TraceFile, obs.MetricsPromFile, obs.MetricsJSONFile, obs.ManifestFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
	}

	chromePath := filepath.Join(dir, "chrome.json")
	if err := cmdTrace([]string{"export", "-format=chrome", "-run", dir, "-o", chromePath}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no trace events")
	}
	if err := cmdTrace([]string{"export", "-format=text", "-run", dir, "-o", filepath.Join(dir, "trace.txt")}); err != nil {
		t.Fatal(err)
	}

	if err := cmdMetrics([]string{"-run", dir, "-format", "prom"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMetrics([]string{"-run", dir, "-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMetrics([]string{"-run", dir, "-format", "bogus"}); err == nil {
		t.Fatal("bogus metrics format must fail")
	}

	if err := cmdReplay(ctx, []string{"-manifest", filepath.Join(dir, obs.ManifestFile)}); err != nil {
		t.Fatalf("replay must reproduce the recorded hash: %v", err)
	}

	if err := cmdRun(ctx, nil); err == nil {
		t.Fatal("run without -method or -spec must fail")
	}
	if err := cmdRun(ctx, []string{"-spec", filepath.Join(dir, "nosuch.json")}); err == nil {
		t.Fatal("missing spec file must fail")
	}
	if err := cmdRun(ctx, []string{"-method", "pww", "-spec", "x.json"}); err == nil {
		t.Fatal("-method and -spec together must fail")
	}
	if err := cmdTrace(nil); err == nil {
		t.Fatal("trace without subcommand must fail")
	}
	if err := cmdTrace([]string{"export", "-run", t.TempDir()}); err == nil {
		t.Fatal("trace export without a capture must fail")
	}
}

func TestCacheCommand(t *testing.T) {
	dir := t.TempDir()
	if err := cmdCache([]string{"stat", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCache([]string{"clear", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCache(nil); err == nil {
		t.Fatal("cache without args must fail")
	}
	if err := cmdCache([]string{"bogus"}); err == nil {
		t.Fatal("unknown cache subcommand must fail")
	}
}
