package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comb/internal/stats"
)

func TestSweepPointMetrics(t *testing.T) {
	for _, metric := range []string{"bandwidth", "availability"} {
		v, err := sweepPoint("polling", metric, "gm", 100_000, 1_000_000)
		if err != nil {
			t.Fatalf("polling %s: %v", metric, err)
		}
		if v <= 0 {
			t.Errorf("polling %s = %v", metric, v)
		}
	}
	for _, metric := range []string{"bandwidth", "availability", "wait", "overhead", "postrecv"} {
		v, err := sweepPoint("pww", metric, "portals", 100_000, 1_000_000)
		if err != nil {
			t.Fatalf("pww %s: %v", metric, err)
		}
		if v < 0 {
			t.Errorf("pww %s = %v", metric, v)
		}
	}
}

func TestSweepPointErrors(t *testing.T) {
	if _, err := sweepPoint("polling", "wait", "gm", 1000, 1000); err == nil {
		t.Error("polling has no wait metric")
	}
	if _, err := sweepPoint("pww", "nosuch", "gm", 1000, 1000); err == nil {
		t.Error("unknown metric must fail")
	}
	if _, err := sweepPoint("nosuch", "bandwidth", "gm", 1000, 1000); err == nil {
		t.Error("unknown method must fail")
	}
	if _, err := sweepPoint("polling", "bandwidth", "nosuch", 1000, 1000); err == nil {
		t.Error("unknown system must fail")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tbl := &stats.Table{
		XLabel: "x", YLabel: "y",
		Series: []stats.Series{{Name: "s", Points: []stats.Point{{X: 1, Y: 2}}}},
	}
	if err := writeCSV(dir, "7", tbl); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig07.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "series,x,y") {
		t.Fatalf("csv content: %q", b)
	}
}

func TestCommandFunctions(t *testing.T) {
	// The plumbing-level command handlers, driven directly.  -no-cache
	// keeps test runs from writing results/cache/ into the repo.
	ctx := context.Background()
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
	if err := cmdPolling(ctx, []string{"-system", "ideal", "-work", "5000000"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPWW(ctx, []string{"-system", "ideal", "-reps", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFigure(ctx, []string{"-no-cache"}); err == nil {
		t.Fatal("figure without args must fail")
	}
	if err := cmdFigure(ctx, []string{"-quick", "-chart=false", "-no-cache", "13"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAssess(ctx, []string{"-no-cache"}); err == nil {
		t.Fatal("assess without args must fail")
	}
	if err := cmdSweep(ctx, []string{"-systems", "ideal", "-from", "100000", "-to", "1000000",
		"-points", "1", "-chart=false", "-no-cache"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep(ctx, []string{"-sizes", "abc", "-no-cache"}); err == nil {
		t.Fatal("bad sizes must fail")
	}
	if err := cmdSweep(ctx, []string{"-method", "bogus", "-no-cache"}); err == nil {
		t.Fatal("bad method must fail")
	}
	if err := cmdPingpong([]string{"-systems", "ideal", "-reps", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheCommand(t *testing.T) {
	dir := t.TempDir()
	if err := cmdCache([]string{"stat", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCache([]string{"clear", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCache(nil); err == nil {
		t.Fatal("cache without args must fail")
	}
	if err := cmdCache([]string{"bogus"}); err == nil {
		t.Fatal("unknown cache subcommand must fail")
	}
}
