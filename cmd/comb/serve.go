package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"comb"
	"comb/internal/runner"
	"comb/internal/serve"
)

// cmdServe runs the benchmark service: an HTTP API accepting versioned
// RunSpecs and answering with content-addressed results (see
// docs/SERVING.md).
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent benchmark jobs (0 = GOMAXPROCS)")
	queueCap := fs.Int("queue", 64, "accepted-but-unstarted job backlog before 503s")
	retain := fs.Int("retain", 0, "finished jobs kept in memory (0 = 1024, negative = unlimited)")
	noStore := fs.Bool("no-store", false, "serve from memory only (no persistent result store)")
	cacheDir := fs.String("cache-dir", runner.DefaultCacheDir, "persistent result store directory (shared with sweep cache)")
	jobsDir := fs.String("jobs-dir", "", "write per-job artifact directories here ('' disables)")
	timeout := fs.Duration("timeout", 0, "per-attempt run deadline (0 disables)")
	retries := fs.Int("retries", 0, "extra attempts for a failed run")
	breakerFails := fs.Int("breaker-fails", 5, "consecutive failures that open the circuit breaker (0 disables)")
	breakerCool := fs.Duration("breaker-cooldown", 30*time.Second, "open-breaker cooldown before probing")
	rate := fs.Float64("rate", 0, "accepted /v1/ requests per second (0 disables)")
	burst := fs.Int("burst", 10, "rate limiter burst capacity")
	budget := fs.Int("client-budget", 0, "concurrent in-flight /v1/ requests per client (0 disables)")
	quiet := fs.Bool("quiet", false, "suppress per-request and per-job log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := serve.Config{
		Workers:           *workers,
		QueueCap:          *queueCap,
		RetainJobs:        *retain,
		JobsDir:           *jobsDir,
		Timeout:           *timeout,
		Retries:           *retries,
		BreakerThreshold:  *breakerFails,
		BreakerCooldown:   *breakerCool,
		Rate:              *rate,
		Burst:             *burst,
		ClientConcurrency: *budget,
	}
	if !*noStore {
		cfg.Store = serve.OpenStore(*cacheDir)
	}
	if !*quiet {
		cfg.Log = log.New(os.Stderr, "", log.LstdFlags)
	}
	srv := serve.New(cfg)
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "comb serve: listening on %s (spec v%d; POST /v1/jobs)\n", *addr, comb.SpecVersion)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}

// cmdSubmit posts one versioned spec to a running server, long-polls
// until the job is terminal, and prints the result and its hash.
func cmdSubmit(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "server base URL")
	specPath := fs.String("spec", "", "versioned spec JSON file ('-' for stdin)")
	client := fs.String("client", "", "X-Comb-Client identity for the server's per-client budget")
	wait := fs.Duration("wait", 30*time.Second, "how long to long-poll per request")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return errors.New("submit: need -spec <file.json> (see docs/SERVING.md; '-' reads stdin)")
	}
	body, err := readSpecFile(*specPath)
	if err != nil {
		return err
	}
	base := strings.TrimSuffix(*addr, "/")
	hc := &http.Client{}

	view, err := postJob(ctx, hc, base, *client, body)
	if err != nil {
		return err
	}
	fmt.Printf("job %s accepted (key %s)\n", view.ID, view.Key)

	for !view.State.Terminal() {
		view, err = getJob(ctx, hc, base, *client, view.ID, *wait, view.Version)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "job %s: %s\n", view.ID, view.State)
	}
	if view.State == serve.StateFailed {
		return fmt.Errorf("submit: job %s failed: %s", view.ID, view.Error)
	}

	res, err := getResult(ctx, hc, base, *client, view.ID)
	if err != nil {
		return err
	}
	fmt.Printf("source          %s\n", res.Source)
	fmt.Printf("result hash     %s\n", res.ResultHash)
	b, err := json.MarshalIndent(res.Result, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

func readSpecFile(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	// An argument that starts with '{' is an inline spec document, not a
	// file name — the form selfcheck replay lines quote.
	if strings.HasPrefix(strings.TrimSpace(path), "{") {
		return []byte(path), nil
	}
	return os.ReadFile(path)
}

// decodeOrAPIError decodes a 2xx body into v, or surfaces the server's
// structured error for anything else.
func decodeOrAPIError(resp *http.Response, v any) error {
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(b, &e) == nil && e.Error.Message != "" {
			return fmt.Errorf("server: %s (%s)", e.Error.Message, e.Error.Code)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return json.Unmarshal(b, v)
}

func doJSON(ctx context.Context, hc *http.Client, method, url, client string, body io.Reader, v any) error {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if client != "" {
		req.Header.Set("X-Comb-Client", client)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	return decodeOrAPIError(resp, v)
}

func postJob(ctx context.Context, hc *http.Client, base, client string, spec []byte) (serve.View, error) {
	var v serve.View
	err := doJSON(ctx, hc, http.MethodPost, base+"/v1/jobs", client, strings.NewReader(string(spec)), &v)
	return v, err
}

func getJob(ctx context.Context, hc *http.Client, base, client, id string, wait time.Duration, since int) (serve.View, error) {
	var v serve.View
	url := fmt.Sprintf("%s/v1/jobs/%s?wait=%s&since=%d", base, id, wait, since)
	err := doJSON(ctx, hc, http.MethodGet, url, client, nil, &v)
	return v, err
}

func getResult(ctx context.Context, hc *http.Client, base, client, id string) (serve.ResultResponse, error) {
	var r serve.ResultResponse
	err := doJSON(ctx, hc, http.MethodGet, base+"/v1/jobs/"+id+"/result", client, nil, &r)
	return r, err
}

// scrapeMetrics fetches a running server's /metrics exposition.
func scrapeMetrics(ctx context.Context, addr string) error {
	base := strings.TrimSuffix(addr, "/")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: server returned HTTP %d", resp.StatusCode)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
