// Command comb runs the COMB benchmark suite on the simulated systems and
// regenerates the paper's evaluation figures.
//
// Usage:
//
//	comb list                         # figures and systems
//	comb methods                      # registered benchmark methods
//	comb run -method <name> [flags]   # one measurement (unified entry)
//	comb polling [flags]              # one polling-method measurement
//	comb pww [flags]                  # one post-work-wait measurement
//	comb trace export [flags]         # export the last run's span timeline
//	comb metrics [flags]              # print the last run's metrics
//	comb replay -manifest <file>      # re-run a manifest, verify the hash
//	comb figure <n|all> [flags]       # regenerate figure(s) 4-18
//	comb compare [flags]              # side-by-side system summary
//	comb assess <system|all> [flags]  # full diagnostic report
//	comb sweep [flags]                # custom sweep over systems/sizes/metric
//	comb cache <clear|stat> [flags]   # manage the on-disk result cache
//	comb pingpong [flags]             # the pre-COMB microbenchmark view
//	comb bench [-profile] [flags]     # time a hot-path workload; pprof output
//	comb selfcheck                    # verify calibration and headline claims
//	comb report [flags]               # auto-generated markdown report
//
// Sweep-shaped subcommands (figure, sweep, compare, assess, report) run
// their points on a shared parallel engine: -j bounds the worker count,
// and results persist in an on-disk cache (results/cache/ by default;
// -no-cache skips it, `comb cache clear` empties it).  Ctrl-C cancels a
// running sweep mid-point.
//
// Single measurements (run, polling, pww) write their observability
// artifacts — span capture, metrics, and provenance manifest — into
// -obs-dir (results/last by default; empty disables).  `comb trace
// export -format=chrome` turns the capture into Chrome trace-event JSON
// loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Run `comb <subcommand> -h` for flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"comb"
	"comb/internal/asciichart"
	"comb/internal/assess"
	"comb/internal/method"
	"comb/internal/obs"
	"comb/internal/pingpong"
	"comb/internal/report"
	"comb/internal/runner"
	"comb/internal/scenario"
	"comb/internal/selfcheck"
	"comb/internal/stats"
	"comb/internal/sweep"
	"comb/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "methods":
		err = cmdMethods()
	case "run":
		err = cmdRun(ctx, os.Args[2:])
	case "polling":
		err = cmdPolling(ctx, os.Args[2:])
	case "pww":
		err = cmdPWW(ctx, os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "replay":
		err = cmdReplay(ctx, os.Args[2:])
	case "figure":
		err = cmdFigure(ctx, os.Args[2:])
	case "compare":
		err = cmdCompare(ctx, os.Args[2:])
	case "assess":
		err = cmdAssess(ctx, os.Args[2:])
	case "sweep":
		err = cmdSweep(ctx, os.Args[2:])
	case "cache":
		err = cmdCache(os.Args[2:])
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "submit":
		err = cmdSubmit(ctx, os.Args[2:])
	case "pingpong":
		err = cmdPingpong(ctx, os.Args[2:])
	case "bench":
		err = cmdBench(ctx, os.Args[2:])
	case "selfcheck":
		err = cmdSelfcheck(ctx, os.Args[2:])
	case "report":
		err = cmdReport(ctx, os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "comb: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "comb: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: comb <subcommand> [flags]

subcommands:
  list      list reproducible figures and simulated systems
  methods   list registered benchmark methods and their phases
  run       run one measurement (-method <name> plus method flags, or
            -spec <file.json> with a versioned RunSpec)
  polling   run one polling-method measurement
  pww       run one post-work-wait measurement
  trace     export the last run's span timeline (trace export -format=chrome|text)
  metrics   print the last run's metrics (-format prom|json)
  replay    re-run a saved manifest and verify its result hash
  figure    regenerate figure <n|all> (Figures 4-18)
  compare   quick side-by-side summary of all systems
  assess    full COMB characterization of one system (or 'all')
  sweep     custom parameter sweep over any systems/sizes/metric
  cache     manage the on-disk result cache (clear|stat)
  serve     run the benchmark service (HTTP API over versioned RunSpecs)
  submit    post a spec file to a running server and await the result
  pingpong  classic latency/bandwidth microbenchmark (the pre-COMB view)
  bench     time a hot-path workload; -profile writes CPU/heap pprof files
  selfcheck verify the reproduction's calibration and headline claims
            (-fuzz N adds N deterministic fault-injected runs; -pack
            NAME|all runs scenario packs through the differential
            metamorphic oracle, see docs/SCENARIOS.md)
  report    write the full reproduction report as markdown

sweep-shaped subcommands accept -j N (parallel simulations) and cache
results under results/cache/ (-no-cache to skip, 'comb cache clear' to
empty); figure and sweep accept -strategy
(grid|bisect|knee|adaptive-reps) to replace the dense grid with a
search, see docs/SWEEPS.md; polling and pww accept -seed and -faults '<spec>' for
deterministic degraded runs (e.g. -faults 'drop=0.01,delay=0.2:50us')
and write trace/metrics/manifest artifacts into -obs-dir (results/last
by default) for 'comb trace export', 'comb metrics' and 'comb replay'`)
}

// engineOpts are the execution flags shared by every sweep-shaped
// subcommand (figure, sweep, compare, assess, report).
type engineOpts struct {
	jobs    *int
	simJ    *int
	noCache *bool
	dir     *string
	retries *int
}

func addEngineFlags(fs *flag.FlagSet) *engineOpts {
	return &engineOpts{
		jobs:    fs.Int("j", 0, "parallel simulations (0 = GOMAXPROCS)"),
		simJ:    fs.Int("sim-j", 0, "parallel DES partitions per simulation (needs -nodes > 2; results are identical)"),
		noCache: fs.Bool("no-cache", false, "skip the on-disk result cache"),
		dir:     fs.String("cache-dir", runner.DefaultCacheDir, "on-disk result cache directory"),
		retries: fs.Int("retries", 0, "extra attempts for a failed point"),
	}
}

// install builds the command's engine, wires the live progress meter, and
// makes it the sweep default so every path in this process shares one
// cache.
func (o *engineOpts) install() *progressMeter {
	m := &progressMeter{reg: obs.NewRegistry()}
	cfg := runner.Config{
		Workers:    *o.jobs,
		SimWorkers: *o.simJ,
		Retries:    *o.retries,
		OnProgress: m.update,
		Obs:        m.reg,
	}
	if !*o.noCache {
		cfg.Disk = runner.Open(*o.dir)
	}
	eng := runner.New(cfg)
	m.eng = eng
	sweep.DefaultEngine = eng
	return m
}

// progressMeter renders a live point counter on stderr while a sweep
// batch executes.
type progressMeter struct {
	eng     *runner.Engine
	reg     *obs.Registry // the engine's metrics, snapshotted into figure manifests
	printed bool
	muted   bool
}

// update is the engine's progress callback (the engine serializes calls).
func (m *progressMeter) update(p runner.Progress) {
	if m.muted || p.Total == 0 {
		return
	}
	st := m.eng.Stats()
	fmt.Fprintf(os.Stderr, "\r%4d/%d points (ran %d, cache hits %d)",
		p.Done, p.Total, st.Runs, st.MemHits+st.DiskHits)
	m.printed = true
}

// finish terminates the meter line and silences later batches (the
// shaping pass re-reads every point from the memo, which would otherwise
// redraw the meter between output tables).
func (m *progressMeter) finish() {
	if m.printed {
		fmt.Fprintln(os.Stderr)
		m.printed = false
	}
	m.muted = true
}

func cmdList() error {
	fmt.Println("systems:")
	for _, s := range comb.Systems() {
		fmt.Printf("  %s\n", s)
	}
	fmt.Println("\nfigures:")
	for _, f := range comb.Figures() {
		fmt.Printf("  %-3s %s\n      expect: %s\n", f.ID, f.Title, f.Expect)
	}
	return nil
}

// methodCapabilities renders the capability matrix cells for one
// registered method: an "x" per optional interface it implements.
func methodCapabilities(m method.Method) []string {
	mark := func(ok bool) string {
		if ok {
			return "x"
		}
		return "-"
	}
	_, calib := m.(method.Calibratable)
	_, check := m.(method.ResultChecker)
	_, relax := m.(method.Relaxer)
	_, fuzz := m.(method.Fuzzer)
	_, flags := m.(method.FlagBinder)
	_, nodes := m.(method.NodeScaler)
	return []string{mark(calib), mark(check), mark(relax), mark(fuzz), mark(flags), mark(nodes)}
}

// methodCapabilityHeaders names the capability matrix columns, in the
// order methodCapabilities fills them.
var methodCapabilityHeaders = []string{"calib", "check", "relax", "fuzz", "flags", "nodes"}

// cmdMethods lists every registered benchmark method as a capability
// matrix — which optional registry interfaces (calibration, result
// checking, invariant relaxation, fuzzing, CLI flags, node scaling)
// each method plugs into — plus its description and phase taxonomy.
func cmdMethods() error {
	fmt.Printf("%-10s %s  description\n", "method", strings.Join(methodCapabilityHeaders, "  "))
	for _, name := range comb.Methods() {
		m, err := method.Lookup(name)
		if err != nil {
			return err
		}
		cells := methodCapabilities(m)
		for i, c := range cells {
			cells[i] = fmt.Sprintf("%-*s", len(methodCapabilityHeaders[i]), c)
		}
		fmt.Printf("%-10s %s  %s\n", name, strings.Join(cells, "  "), m.Describe())
		fmt.Printf("%-10s phases: %s\n", "", strings.Join(m.PhaseTaxonomy(), ", "))
	}
	return nil
}

func cmdPolling(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("polling", flag.ExitOnError)
	system := fs.String("system", "gm", "system to benchmark (gm|portals|ideal)")
	size := fs.Int("size", 100_000, "message size in bytes")
	poll := fs.Int64("poll", 100_000, "poll interval (loop iterations)")
	work := fs.Int64("work", 25_000_000, "total work (loop iterations)")
	queue := fs.Int("queue", 4, "message queue depth per direction")
	cpus := fs.Int("cpus", 1, "processors per node (SMP extension, paper s7)")
	nodes := fs.Int("nodes", 0, "cluster size: concurrent worker/support pairs sharing the switch (0 = the paper's 2 nodes)")
	simJ := fs.Int("sim-j", 0, "parallel DES partitions (needs -nodes > 2; results are identical)")
	showStats := fs.Bool("stats", false, "print hardware counters (packets, CPU breakdown)")
	traceN := fs.Int("trace", 0, "print the last N packet deliveries")
	seed := fs.Uint64("seed", 0, "wire/fault RNG seed (0 = platform default)")
	faults := fs.String("faults", "", "fault injection spec, e.g. 'drop=0.01,delay=0.2:50us,jitter=0.1:200us'")
	strat := fs.String("strategy", "", "measurement-protocol stamp recorded in the spec key and manifest ("+strategyFlagHelp+")")
	obsDir := fs.String("obs-dir", obs.DefaultRunDir, "directory for trace/metrics/manifest artifacts ('' disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fspec, err := parseFaults(*faults)
	if err != nil {
		return err
	}
	st, err := parseStrategy(*strat)
	if err != nil {
		return err
	}
	noteSingleRunStrategy(st)
	warnMaskedFaults(*system, fspec)
	out, err := comb.Run(ctx, comb.RunSpec{
		Method:     comb.MethodPolling,
		System:     *system,
		CPUs:       *cpus,
		Nodes:      *nodes,
		SimWorkers: *simJ,
		TraceCap:   *traceN,
		ObsCap:     obsCapFor(*obsDir),
		Seed:       *seed,
		Faults:     fspec,
		Strategy:   st,
		Polling: &comb.PollingConfig{
			Config:       comb.Config{MsgSize: *size},
			PollInterval: *poll,
			WorkTotal:    *work,
			QueueDepth:   *queue,
		},
	})
	if err != nil {
		return err
	}
	if err := writeObs(*obsDir, out); err != nil {
		return err
	}
	res := out.Polling
	fmt.Printf("system          %s\n", *system)
	fmt.Printf("message size    %d B\n", res.MsgSize)
	fmt.Printf("poll interval   %d iterations\n", res.PollInterval)
	fmt.Printf("work total      %d iterations\n", res.WorkTotal)
	fmt.Printf("queue depth     %d\n", res.QueueDepth)
	fmt.Printf("dry-run time    %v\n", res.DryTime)
	fmt.Printf("messaging time  %v\n", res.Elapsed)
	fmt.Printf("messages        %d (%d bytes)\n", res.MsgsReceived, res.BytesReceived)
	fmt.Printf("bandwidth       %.2f MB/s\n", res.BandwidthMBs)
	fmt.Printf("availability    %.3f\n", res.Availability)
	if res.SystemAvailability > 0 {
		fmt.Printf("system avail    %.3f (node-wide, SMP-safe)\n", res.SystemAvailability)
	}
	if *showStats {
		printStats(out.Stats)
	}
	if out.Trace != nil {
		fmt.Printf("--- last %d packet deliveries (%s) ---\n", out.Trace.Len(), out.Trace.Summary())
		if _, err := out.Trace.WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// printStats renders the hardware counters.
func printStats(st *comb.RunStats) {
	fmt.Printf("--- hardware counters (whole run incl. setup/drain) ---\n")
	fmt.Printf("wire            %d packets, %d bytes\n", st.Packets, st.WireBytes)
	for _, n := range st.CPUs {
		fmt.Printf("node%d CPU       user %v, kernel %v, interrupt %v (%d core(s))\n",
			n.Node, n.User.Round(time.Microsecond), n.Kernel.Round(time.Microsecond),
			n.Interrupt.Round(time.Microsecond), n.Cores)
	}
}

func cmdPWW(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("pww", flag.ExitOnError)
	system := fs.String("system", "gm", "system to benchmark (gm|portals|ideal)")
	size := fs.Int("size", 100_000, "message size in bytes")
	work := fs.Int64("work", 1_000_000, "work interval (loop iterations)")
	reps := fs.Int("reps", 20, "post-work-wait cycles")
	batch := fs.Int("batch", 4, "messages per batch per direction")
	test := fs.Bool("test", false, "plant one MPI_Test early in the work phase (paper §4.3)")
	interleave := fs.Int("interleave", 1, "batches kept in flight (paper §4.3's earlier variant)")
	cpus := fs.Int("cpus", 1, "processors per node (SMP extension, paper s7)")
	nodes := fs.Int("nodes", 0, "cluster size: concurrent worker/support pairs sharing the switch (0 = the paper's 2 nodes)")
	simJ := fs.Int("sim-j", 0, "parallel DES partitions (needs -nodes > 2; results are identical)")
	seed := fs.Uint64("seed", 0, "wire/fault RNG seed (0 = platform default)")
	faults := fs.String("faults", "", "fault injection spec, e.g. 'drop=0.01,delay=0.2:50us,jitter=0.1:200us'")
	strat := fs.String("strategy", "", "measurement-protocol stamp recorded in the spec key and manifest ("+strategyFlagHelp+")")
	obsDir := fs.String("obs-dir", obs.DefaultRunDir, "directory for trace/metrics/manifest artifacts ('' disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fspec, err := parseFaults(*faults)
	if err != nil {
		return err
	}
	st, err := parseStrategy(*strat)
	if err != nil {
		return err
	}
	noteSingleRunStrategy(st)
	warnMaskedFaults(*system, fspec)
	out, err := comb.Run(ctx, comb.RunSpec{
		Method:     comb.MethodPWW,
		System:     *system,
		CPUs:       *cpus,
		Nodes:      *nodes,
		SimWorkers: *simJ,
		ObsCap:     obsCapFor(*obsDir),
		Seed:       *seed,
		Faults:     fspec,
		Strategy:   st,
		PWW: &comb.PWWConfig{
			Config:       comb.Config{MsgSize: *size},
			WorkInterval: *work,
			Reps:         *reps,
			BatchSize:    *batch,
			TestInWork:   *test,
			Interleave:   *interleave,
		},
	})
	if err != nil {
		return err
	}
	if err := writeObs(*obsDir, out); err != nil {
		return err
	}
	res := out.PWW
	fmt.Printf("system          %s\n", *system)
	fmt.Printf("message size    %d B\n", res.MsgSize)
	fmt.Printf("work interval   %d iterations\n", res.WorkInterval)
	fmt.Printf("reps x batch    %d x %d (test-in-work: %v)\n", res.Reps, res.BatchSize, res.TestInWork)
	fmt.Printf("work only       %v per phase\n", res.AvgWorkOnly)
	fmt.Printf("work with MH    %v per phase (overhead %.1f%%)\n", res.AvgWorkMH, res.WorkOverhead*100)
	fmt.Printf("post (recv)     %v per message\n", res.AvgPostRecv)
	fmt.Printf("post (send)     %v per message\n", res.AvgPostSend)
	fmt.Printf("wait            %v per message\n", res.AvgWait)
	fmt.Printf("bandwidth       %.2f MB/s\n", res.BandwidthMBs)
	fmt.Printf("availability    %.3f\n", res.Availability)
	if res.SystemAvailability > 0 {
		fmt.Printf("system avail    %.3f (node-wide, SMP-safe)\n", res.SystemAvailability)
	}
	return nil
}

// cmdRun is the unified single-measurement entry.  -method <name>
// picks the registered method and forwards every other flag to the
// method's own flag set; -spec <file.json> runs a schema-versioned
// RunSpec document instead — the same JSON the serve API accepts.
// Polling and PWW keep their dedicated subcommand output; every other
// registered method runs through the generic registry path.
func cmdRun(ctx context.Context, args []string) error {
	var name, specPath string
	rest := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-method" || a == "--method":
			if i+1 >= len(args) {
				return fmt.Errorf("run: %s needs a value (%s)", a, strings.Join(comb.Methods(), "|"))
			}
			i++
			name = args[i]
		case a == "-spec" || a == "--spec":
			if i+1 >= len(args) {
				return fmt.Errorf("run: %s needs a spec file", a)
			}
			i++
			specPath = args[i]
		case strings.HasPrefix(a, "-method="):
			name = strings.TrimPrefix(a, "-method=")
		case strings.HasPrefix(a, "--method="):
			name = strings.TrimPrefix(a, "--method=")
		case strings.HasPrefix(a, "-spec="):
			specPath = strings.TrimPrefix(a, "-spec=")
		case strings.HasPrefix(a, "--spec="):
			specPath = strings.TrimPrefix(a, "--spec=")
		default:
			rest = append(rest, a)
		}
	}
	if specPath != "" {
		if name != "" {
			return fmt.Errorf("run: -method and -spec are mutually exclusive")
		}
		return runSpecFile(ctx, specPath, rest)
	}
	switch name {
	case "polling":
		return cmdPolling(ctx, rest)
	case "pww":
		return cmdPWW(ctx, rest)
	case "":
		return fmt.Errorf("run: need -method %s or -spec <file.json>", strings.Join(comb.Methods(), "|"))
	}
	return runMethod(ctx, name, rest)
}

// runSpecFile executes a versioned RunSpec JSON document — the same
// body `comb submit` posts — locally through comb.Run.
func runSpecFile(ctx context.Context, path string, args []string) error {
	fs := flag.NewFlagSet("run -spec", flag.ExitOnError)
	obsDir := fs.String("obs-dir", obs.DefaultRunDir, "directory for trace/metrics/manifest artifacts ('' disables)")
	strat := fs.String("strategy", "", "override the document's strategy stamp ("+strategyFlagHelp+")")
	simJ := fs.Int("sim-j", 0, "parallel DES partitions (execution knob, never part of the document; results are identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := readSpecFile(path)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	var sp comb.RunSpec
	if err := json.Unmarshal(b, &sp); err != nil {
		return fmt.Errorf("run: %s: %w", path, err)
	}
	if *strat != "" {
		st, err := parseStrategy(*strat)
		if err != nil {
			return err
		}
		sp.Strategy = st
	}
	noteSingleRunStrategy(sp.Strategy)
	if *simJ != 0 {
		sp.SimWorkers = *simJ
	}
	if sp.ObsCap == 0 {
		sp.ObsCap = obsCapFor(*obsDir)
	}
	out, err := comb.Run(ctx, sp)
	if err != nil {
		return err
	}
	if err := writeObs(*obsDir, out); err != nil {
		return err
	}
	fmt.Println(out.Value.String())
	if out.Trace != nil {
		fmt.Printf("--- last %d packet deliveries (%s) ---\n", out.Trace.Len(), out.Trace.Summary())
		if _, err := out.Trace.WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// runMethod drives any registered method through the facade: the
// method's own flags (declared via its FlagBinder) plus the shared run
// flags, the unified Run pipeline, and the observability artifacts.
func runMethod(ctx context.Context, name string, args []string) error {
	m, err := method.Lookup(name)
	if err != nil {
		return fmt.Errorf("run: unknown method %q (have %s)", name, strings.Join(comb.Methods(), ", "))
	}
	fb, ok := m.(method.FlagBinder)
	if !ok {
		return fmt.Errorf("run: method %q declares no command-line flags; drive it through the Go API (comb.Run)", name)
	}
	fs := flag.NewFlagSet("run -method "+name, flag.ExitOnError)
	system := fs.String("system", "gm", "system to benchmark (gm|portals|ideal)")
	cpus := fs.Int("cpus", 1, "processors per node (SMP extension, paper s7)")
	nodes := fs.Int("nodes", 0, "cluster size: concurrent worker/support pairs sharing the switch (0 = the paper's 2 nodes)")
	simJ := fs.Int("sim-j", 0, "parallel DES partitions (needs -nodes > 2; results are identical)")
	traceN := fs.Int("trace", 0, "print the last N packet deliveries")
	seed := fs.Uint64("seed", 0, "wire/fault RNG seed (0 = platform default)")
	faults := fs.String("faults", "", "fault injection spec, e.g. 'drop=0.01,delay=0.2:50us,jitter=0.1:200us'")
	strat := fs.String("strategy", "", "measurement-protocol stamp recorded in the spec key and manifest ("+strategyFlagHelp+")")
	obsDir := fs.String("obs-dir", obs.DefaultRunDir, "directory for trace/metrics/manifest artifacts ('' disables)")
	params := fb.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fspec, err := parseFaults(*faults)
	if err != nil {
		return err
	}
	st, err := parseStrategy(*strat)
	if err != nil {
		return err
	}
	noteSingleRunStrategy(st)
	warnMaskedFaults(*system, fspec)
	out, err := comb.Run(ctx, comb.RunSpec{
		Method:     comb.Method(name),
		System:     *system,
		CPUs:       *cpus,
		Nodes:      *nodes,
		SimWorkers: *simJ,
		TraceCap:   *traceN,
		ObsCap:     obsCapFor(*obsDir),
		Seed:       *seed,
		Faults:     fspec,
		Strategy:   st,
		Params:     params(),
	})
	if err != nil {
		return err
	}
	if err := writeObs(*obsDir, out); err != nil {
		return err
	}
	fmt.Println(out.Value.String())
	if out.Trace != nil {
		fmt.Printf("--- last %d packet deliveries (%s) ---\n", out.Trace.Len(), out.Trace.Summary())
		if _, err := out.Trace.WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// obsCapFor maps an -obs-dir value to a RunSpec.ObsCap: default span
// capacity when artifacts are wanted, off when the dir is empty.
func obsCapFor(dir string) int {
	if dir == "" {
		return 0
	}
	return -1
}

// writeObs persists a finished run's observability artifacts into dir:
// the span capture, the metrics in both formats, and the provenance
// manifest.
func writeObs(dir string, out *comb.RunResult) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if out.Obs != nil {
		if err := out.Obs.Save(filepath.Join(dir, obs.TraceFile)); err != nil {
			return err
		}
	}
	var prom strings.Builder
	if err := out.Metrics.WritePrometheus(&prom); err != nil {
		return err
	}
	if err := obs.WriteFileAtomic(filepath.Join(dir, obs.MetricsPromFile), []byte(prom.String()), 0o644); err != nil {
		return err
	}
	snap, err := json.MarshalIndent(out.Metrics.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	if err := obs.WriteFileAtomic(filepath.Join(dir, obs.MetricsJSONFile), append(snap, '\n'), 0o644); err != nil {
		return err
	}
	if err := out.Manifest.Save(filepath.Join(dir, obs.ManifestFile)); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote run artifacts to %s/ (%s, %s, %s, %s)\n",
		dir, obs.TraceFile, obs.MetricsPromFile, obs.MetricsJSONFile, obs.ManifestFile)
	return nil
}

// cmdTrace exports a recorded span capture.
func cmdTrace(args []string) error {
	if len(args) < 1 || args[0] != "export" {
		return fmt.Errorf("trace: need the 'export' subcommand, e.g. `comb trace export -format=chrome`")
	}
	fs := flag.NewFlagSet("trace export", flag.ExitOnError)
	format := fs.String("format", "chrome", "output format (chrome|text)")
	runDir := fs.String("run", obs.DefaultRunDir, "run directory holding "+obs.TraceFile)
	outPath := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	cp, err := obs.LoadCapture(filepath.Join(*runDir, obs.TraceFile))
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "chrome":
		return obs.WriteChromeTrace(w, cp)
	case "text":
		return writeTraceText(w, cp)
	default:
		return fmt.Errorf("trace export: unknown format %q (chrome|text)", *format)
	}
}

// writeTraceText renders a capture as aligned log lines: spans first
// (start, duration, node, category, name, args), then instants.
func writeTraceText(w io.Writer, c *obs.Capture) error {
	if c.DroppedSpans > 0 {
		if _, err := fmt.Fprintf(w, "(%d earlier spans dropped)\n", c.DroppedSpans); err != nil {
			return err
		}
	}
	for _, s := range c.Spans {
		if _, err := fmt.Fprintf(w, "%14v %14v node%d %-7s %s", s.Start, s.Dur, s.Node, s.Cat, s.Name); err != nil {
			return err
		}
		for _, kv := range s.Args {
			if _, err := fmt.Fprintf(w, " %s=%s", kv.K, kv.V); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, in := range c.Instants {
		if _, err := fmt.Fprintf(w, "%14v %14s node%d %-7s %s\n", in.At, "-", in.Node, in.Cat, in.Detail); err != nil {
			return err
		}
	}
	return nil
}

// cmdMetrics prints a saved metrics file from a run directory, or with
// -addr scrapes a running `comb serve` instance's /metrics endpoint.
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	runDir := fs.String("run", obs.DefaultRunDir, "run directory holding the metrics files")
	format := fs.String("format", "prom", "output format (prom|json)")
	addr := fs.String("addr", "", "scrape a running server's /metrics instead (e.g. http://localhost:8080)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr != "" {
		return scrapeMetrics(context.Background(), *addr)
	}
	var name string
	switch *format {
	case "prom":
		name = obs.MetricsPromFile
	case "json":
		name = obs.MetricsJSONFile
	default:
		return fmt.Errorf("metrics: unknown format %q (prom|json)", *format)
	}
	b, err := os.ReadFile(filepath.Join(*runDir, name))
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}

// cmdReplay re-executes a saved manifest and verifies the result hash;
// a divergence is an error (nonzero exit).
func cmdReplay(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	path := fs.String("manifest", filepath.Join(obs.DefaultRunDir, obs.ManifestFile), "manifest file to replay")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mf, err := obs.LoadManifest(*path)
	if err != nil {
		return err
	}
	res, err := comb.Replay(ctx, mf)
	if err != nil {
		return err
	}
	fmt.Printf("replay of %s/%s reproduced the recorded result\n", mf.Method, mf.System)
	fmt.Printf("result hash     %s\n", res.Manifest.ResultHash)
	return nil
}

func cmdFigure(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced sweep (one size, fewer points)")
	chart := fs.Bool("chart", true, "render an ASCII chart")
	table := fs.Bool("table", false, "print the aligned numeric table")
	csvDir := fs.String("csv", "", "directory to write figNN.csv files into")
	strat := fs.String("strategy", "", strategyFlagHelp)
	eo := addEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("figure: need a figure number (4-18) or 'all'")
	}
	st, err := parseStrategy(*strat)
	if err != nil {
		return err
	}
	var ids []string
	if fs.Arg(0) == "all" {
		for _, f := range comb.Figures() {
			ids = append(ids, f.ID)
		}
	} else {
		ids = fs.Args()
	}
	meter := eo.install()
	var sstats sweep.SweepStats
	opt := sweep.Options{Quick: *quick, Context: ctx, Strategy: st, Obs: meter.reg, Stats: &sstats}

	// Expand every requested figure up front and execute the union of
	// their point lists in one batch: `figure all -j N` parallelizes
	// across figures, and shared sweeps run exactly once.  A search
	// strategy skips the dense prewarm — spending runs on every grid
	// point is exactly what it avoids.
	var figs []sweep.Figure
	var pts []runner.Point
	for _, id := range ids {
		f, err := sweep.ByID(id)
		if err != nil {
			return err
		}
		figs = append(figs, f)
		if f.Points != nil && st.IsGrid() {
			pts = append(pts, f.Points(opt)...)
		}
	}
	err = sweep.DefaultEngine.RunAll(ctx, pts)
	meter.finish()
	if err != nil {
		return err
	}

	for _, f := range figs {
		fmt.Fprintf(os.Stderr, "building figure %s (%s)...\n", f.ID, f.Title)
		ev0, sk0 := sstats.Evaluated.Load(), sstats.Skipped.Load()
		tbl, err := f.Build(opt)
		if err != nil {
			return err
		}
		if *chart {
			fmt.Println(asciichart.Render(tbl, asciichart.Options{}))
		}
		if *table {
			fmt.Println(tbl.Text())
		}
		if *csvDir != "" {
			np := 0
			if f.Points != nil {
				np = len(f.Points(opt))
			}
			ev, sk := sstats.Evaluated.Load()-ev0, sstats.Skipped.Load()-sk0
			if err := writeCSV(*csvDir, f, tbl, *quick, np, meter.reg, st, ev, sk); err != nil {
				return err
			}
		}
		fmt.Printf("expected shape: %s\n\n", f.Expect)
	}
	return nil
}

// writeCSV writes a figure's data file plus its provenance manifest
// (figNN.manifest.json): the regenerating command, sweep size, search
// strategy and its evaluated/skipped counts, engine metrics snapshot,
// and a hash of the CSV bytes.
func writeCSV(dir string, f sweep.Figure, tbl *stats.Table, quick bool, points int, reg *obs.Registry, st *comb.SweepStrategy, evaluated, skipped int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	csv := tbl.CSV()
	path := filepath.Join(dir, fmt.Sprintf("fig%02s.csv", f.ID))
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)

	mf := obs.NewFigureManifest()
	mf.Figure = f.ID
	mf.Title = f.Title
	mf.Quick = quick
	mf.Command = fmt.Sprintf("comb figure %s -csv %s", f.ID, dir)
	if quick {
		mf.Command += " -quick"
	}
	if !st.IsGrid() {
		mf.Strategy = st.String()
		mf.Command += " -strategy " + st.String()
		mf.PointsEvaluated = evaluated
		mf.PointsSkipped = skipped
	}
	mf.Points = points
	if reg != nil {
		mf.Engine = reg.Snapshot()
	}
	mf.CSVSHA256 = obs.HashBytes([]byte(csv))
	mpath := filepath.Join(dir, fmt.Sprintf("fig%02s.manifest.json", f.ID))
	if err := mf.Save(mpath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", mpath)
	return nil
}

func cmdAssess(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("assess", flag.ExitOnError)
	eo := addEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("assess: need a system name (%v) or 'all'", comb.Systems())
	}
	systems := fs.Args()
	if systems[0] == "all" {
		systems = comb.Systems()
	}
	meter := eo.install()
	for _, sys := range systems {
		r, err := assess.RunContext(ctx, sweep.DefaultEngine, sys)
		if err != nil {
			meter.finish()
			return err
		}
		meter.finish()
		fmt.Println(r)
	}
	return nil
}

func cmdCompare(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	size := fs.Int("size", 100_000, "message size in bytes")
	eo := addEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	meter := eo.install()
	eng := sweep.DefaultEngine

	pollSpec := func(sys string) runner.Point {
		return runner.Point{Method: "polling", System: sys, Params: comb.PollingConfig{
			Config:       comb.Config{MsgSize: *size},
			PollInterval: 100_000,
			WorkTotal:    25_000_000,
		}}
	}
	pwwSpec := func(sys string) runner.Point {
		return runner.Point{Method: "pww", System: sys, Params: comb.PWWConfig{
			Config:       comb.Config{MsgSize: *size},
			WorkInterval: 20_000_000,
			Reps:         10,
		}}
	}
	var pts []runner.Point
	for _, sys := range comb.Systems() {
		pts = append(pts, pollSpec(sys), pwwSpec(sys))
	}
	err := eng.RunAll(ctx, pts)
	meter.finish()
	if err != nil {
		return err
	}

	fmt.Printf("%-10s %14s %14s %14s %14s %10s\n",
		"system", "poll BW MB/s", "poll avail", "pww wait/msg", "pww overhead", "offload?")
	for _, sys := range comb.Systems() {
		pr, err := eng.Run(ctx, pollSpec(sys))
		if err != nil {
			return err
		}
		wr, err := eng.Run(ctx, pwwSpec(sys))
		if err != nil {
			return err
		}
		p, ok := runner.As[*comb.PollingResult](pr)
		if !ok {
			return fmt.Errorf("compare: %s polling point returned a %T result", sys, pr.Value)
		}
		w, ok := runner.As[*comb.PWWResult](wr)
		if !ok {
			return fmt.Errorf("compare: %s pww point returned a %T result", sys, wr.Value)
		}
		// COMB's operational offload test (§4.1): does messaging complete
		// during a long work phase, leaving (almost) nothing to wait for?
		offload := "no"
		if w.AvgWait < w.AvgWorkOnly/100 {
			offload = "yes"
		}
		fmt.Printf("%-10s %14.2f %14.3f %14s %13.1f%% %10s\n",
			sys, p.BandwidthMBs, p.Availability, w.AvgWait.Round(time.Microsecond), w.WorkOverhead*100, offload)
	}
	return nil
}

// cmdSweep runs a custom sweep: any method, systems, sizes and metric.
func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	meth := fs.String("method", "polling", "benchmark method (polling|pww)")
	systems := fs.String("systems", "gm,portals", "comma-separated system list")
	sizes := fs.String("sizes", "100000", "comma-separated message sizes in bytes")
	lo := fs.Int64("from", 1000, "axis start (loop iterations)")
	hi := fs.Int64("to", 100_000_000, "axis end (loop iterations)")
	perDecade := fs.Int("points", 2, "points per decade")
	metric := fs.String("metric", "bandwidth",
		"y value: bandwidth|availability|wait|overhead|postrecv")
	nodes := fs.Int("nodes", 0, "cluster size: concurrent worker/support pairs sharing the switch (0 = the paper's 2 nodes)")
	chart := fs.Bool("chart", true, "render an ASCII chart")
	table := fs.Bool("table", false, "print the aligned numeric table")
	csvOut := fs.Bool("csv", false, "print CSV to stdout")
	strat := fs.String("strategy", "", strategyFlagHelp)
	eo := addEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := parseStrategy(*strat)
	if err != nil {
		return err
	}

	sysList := strings.Split(*systems, ",")
	var sizeList []int
	for _, s := range strings.Split(*sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("sweep: bad size %q", s)
		}
		sizeList = append(sizeList, v)
	}
	axis := stats.LogSpaceInt(*lo, *hi, *perDecade)

	tbl := &stats.Table{
		Title:  fmt.Sprintf("custom sweep: %s %s", *meth, *metric),
		YLabel: *metric,
		LogX:   true,
	}
	switch *meth {
	case "polling":
		tbl.XLabel = "Poll Interval (loop iterations)"
	case "pww":
		tbl.XLabel = "Work Interval (loop iterations)"
	default:
		return fmt.Errorf("sweep: unknown method %q", *meth)
	}

	meter := eo.install()
	// Grid sweeps warm the whole axis through the worker pool, then
	// shape serially off the memo; a search strategy skips the prewarm
	// and lets RunCurve decide which points to spend runs on.
	if st.IsGrid() {
		var pts []runner.Point
		for _, sys := range sysList {
			sys = strings.TrimSpace(sys)
			for _, size := range sizeList {
				for _, x := range axis {
					pts = append(pts, sweepPointSpec(*meth, sys, size, *nodes, x))
				}
			}
		}
		if err := sweep.DefaultEngine.RunAll(ctx, pts); err != nil {
			meter.finish()
			return err
		}
	}
	meter.finish()

	opt := sweep.Options{Context: ctx, Strategy: st, Obs: meter.reg}
	for _, sys := range sysList {
		sys = strings.TrimSpace(sys)
		for _, size := range sizeList {
			name := sys
			if len(sizeList) > 1 {
				name = fmt.Sprintf("%s %dB", sys, size)
			}
			c := sweep.Curve{
				Name: name,
				Axis: axis,
				Eval: func(x int64, rep int) (float64, float64, error) {
					p := sweepPointSpec(*meth, sys, size, *nodes, x)
					p.Seed = sweep.RepSeed(p.Seed, rep)
					res, err := sweep.DefaultEngine.Run(ctx, p)
					if err != nil {
						return 0, 0, err
					}
					y, err := sweepMetric(*meth, *metric, res)
					return float64(x), y, err
				},
			}
			series, err := sweep.RunCurve(opt, c)
			if err != nil {
				return err
			}
			tbl.Series = append(tbl.Series, series)
		}
	}

	if *chart {
		fmt.Println(asciichart.Render(tbl, asciichart.Options{}))
	}
	if *table {
		fmt.Println(tbl.Text())
	}
	if *csvOut {
		fmt.Print(tbl.CSV())
	}
	return nil
}

// sweepPointSpec mirrors sweepPoint's configs as runner points for the
// parallel prewarm.
func sweepPointSpec(meth, sys string, size, nodes int, x int64) runner.Point {
	if meth == "pww" {
		return runner.Point{Method: "pww", System: sys, Nodes: nodes, Params: comb.PWWConfig{
			Config:       comb.Config{MsgSize: size},
			WorkInterval: x,
			Reps:         20,
		}}
	}
	return runner.Point{Method: "polling", System: sys, Nodes: nodes, Params: comb.PollingConfig{
		Config:       comb.Config{MsgSize: size},
		PollInterval: x,
		WorkTotal:    sweep.WorkTotalFor(x),
	}}
}

// sweepMetric extracts the requested metric from one engine result of a
// custom-sweep point.
func sweepMetric(meth, metric string, res *runner.Result) (float64, error) {
	switch meth {
	case "polling":
		r, ok := runner.As[*comb.PollingResult](res)
		if !ok {
			return 0, fmt.Errorf("sweep: polling point returned a %T result", res.Value)
		}
		switch metric {
		case "bandwidth":
			return r.BandwidthMBs, nil
		case "availability":
			return r.Availability, nil
		default:
			return 0, fmt.Errorf("sweep: metric %q not available for polling (bandwidth|availability)", metric)
		}
	case "pww":
		r, ok := runner.As[*comb.PWWResult](res)
		if !ok {
			return 0, fmt.Errorf("sweep: pww point returned a %T result", res.Value)
		}
		switch metric {
		case "bandwidth":
			return r.BandwidthMBs, nil
		case "availability":
			return r.Availability, nil
		case "wait":
			return r.AvgWait.Seconds() * 1e6, nil
		case "overhead":
			return r.WorkOverhead * 100, nil
		case "postrecv":
			return r.AvgPostRecv.Seconds() * 1e6, nil
		}
		return 0, fmt.Errorf("sweep: unknown metric %q", metric)
	}
	return 0, fmt.Errorf("sweep: unknown method %q", meth)
}

// cmdCache manages the persistent on-disk result cache.
func cmdCache(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("cache: need a subcommand (clear|stat)")
	}
	fs := flag.NewFlagSet("cache", flag.ExitOnError)
	dir := fs.String("dir", runner.DefaultCacheDir, "cache directory")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	c := runner.Open(*dir)
	switch args[0] {
	case "clear":
		n, err := c.Clear()
		if err != nil {
			return err
		}
		fmt.Printf("removed %d cache entr%s from %s\n", n, plural(n, "y", "ies"), c.Dir())
		return nil
	case "stat":
		fmt.Printf("%s: %d entr%s (schema v%d)\n", c.Dir(), c.Len(), plural(c.Len(), "y", "ies"), runner.SchemaVersion)
		return nil
	default:
		return fmt.Errorf("cache: unknown subcommand %q (clear|stat)", args[0])
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// cmdReport writes the auto-generated reproduction report.
func cmdReport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced figure sweeps")
	out := fs.String("o", "", "output file (default stdout)")
	rows := fs.Int("rows", 0, "max data rows per figure (0 = all)")
	eo := addEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	meter := eo.install()
	defer meter.finish()
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return report.Write(w, report.Options{Quick: *quick, MaxRowsPerFigure: *rows, Context: ctx})
}

// cmdBench times a representative hot-path workload — the Figure 4-class
// polling measurement, simulated -n times back to back with no caching —
// and, with -profile, wraps the runs in a CPU profile and writes a heap
// snapshot afterwards.  It is the profiling entry point for the
// simulation hot path: see docs/PERFORMANCE.md for the workflow, and
// scripts/benchdiff.sh for the regression gate built on the committed
// baseline.
func cmdBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	system := fs.String("system", "portals", "system to benchmark (gm|portals|tcp|emp|ideal)")
	size := fs.Int("size", 100_000, "message size in bytes")
	poll := fs.Int64("poll", 100_000, "poll interval (loop iterations)")
	work := fs.Int64("work", 25_000_000, "total work (loop iterations)")
	n := fs.Int("n", 3, "back-to-back repetitions")
	profile := fs.Bool("profile", false, "write CPU and heap profiles into -out")
	out := fs.String("out", "results/profiles", "profile output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := comb.RunSpec{
		Method: comb.MethodPolling,
		System: *system,
		Polling: &comb.PollingConfig{
			Config:       comb.Config{MsgSize: *size},
			PollInterval: *poll,
			WorkTotal:    *work,
		},
	}
	var cpuFile *os.File
	if *profile {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		var err error
		cpuFile, err = os.Create(filepath.Join(*out, "cpu.pprof"))
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return err
		}
	}
	var total time.Duration
	for i := 0; i < *n; i++ {
		t0 := time.Now()
		res, err := comb.Run(ctx, spec)
		if err != nil {
			if *profile {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return err
		}
		wall := time.Since(t0)
		total += wall
		fmt.Printf("run %d/%d  %10v wall  (availability %.3f, %.2f MB/s)\n",
			i+1, *n, wall.Round(time.Millisecond), res.Polling.Availability, res.Polling.BandwidthMBs)
	}
	fmt.Printf("mean      %10v wall over %d run(s)\n", (total / time.Duration(*n)).Round(time.Millisecond), *n)
	if *profile {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			return err
		}
		runtime.GC() // settle the heap so the snapshot reflects retained memory
		heapFile, err := os.Create(filepath.Join(*out, "heap.pprof"))
		if err != nil {
			return err
		}
		if err := pprof.WriteHeapProfile(heapFile); err != nil {
			heapFile.Close()
			return err
		}
		if err := heapFile.Close(); err != nil {
			return err
		}
		fmt.Printf("profiles  %s/cpu.pprof, %s/heap.pprof (inspect with: go tool pprof <file>)\n", *out, *out)
	}
	return nil
}

// cmdSelfcheck verifies the reproduction's headline claims; with
// -fuzz N it sweeps N deterministic fault-injected runs through the
// invariant checker, and with -pack NAME (or "all") it runs the
// scenario oracle instead: every workload of the named pack across all
// registered methods × transports, judged by the metamorphic relation
// catalog (internal/scenario), each violation carrying a one-command
// replay line.
func cmdSelfcheck(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("selfcheck", flag.ExitOnError)
	fuzzN := fs.Int("fuzz", 0, "also run N deterministic fault-injected measurements across all transports")
	seed := fs.Uint64("seed", 1, "fuzz sweep seed (each failure logs its own replayable case seed)")
	pack := fs.String("pack", "", "run the named scenario pack ('all' for every pack) through the differential oracle")
	scenarios := fs.String("scenarios", scenario.DefaultDir, "scenario pack manifest directory")
	jobs := fs.Int("j", 0, "parallel simulations for -pack (0 = GOMAXPROCS)")
	simJ := fs.Int("sim-j", 0, "parallel DES partitions per simulation (results are identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pack != "" {
		pr, err := selfcheck.Packs(ctx, *scenarios, *pack, *jobs, *simJ)
		if err != nil {
			return err
		}
		fmt.Print(pr)
		if !pr.Passed() {
			os.Exit(1)
		}
		return nil
	}
	r, err := selfcheck.Run()
	if err != nil {
		return err
	}
	fmt.Print(r)
	failed := !r.Passed()
	if *fuzzN > 0 {
		fr := selfcheck.Fuzz(ctx, *fuzzN, *seed)
		if err := ctx.Err(); err != nil {
			return err
		}
		fmt.Print(fr)
		failed = failed || !fr.Passed()
	}
	if failed {
		os.Exit(1)
	}
	return nil
}

// parseStrategy turns a -strategy flag value into a validated sweep
// strategy: nil when empty or "grid", so the zero value stays the dense
// default and grid sweeps keep their classic spec keys.
func parseStrategy(s string) (*comb.SweepStrategy, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	st, err := comb.ParseStrategy(s)
	if err != nil {
		return nil, err
	}
	if st.IsGrid() {
		return nil, nil
	}
	return st, nil
}

// strategyFlagHelp is the shared -strategy usage string.
var strategyFlagHelp = fmt.Sprintf("sweep search strategy (%s; knobs like 'bisect:target=0.5', see docs/SWEEPS.md)",
	strings.Join(comb.Strategies(), "|"))

// noteSingleRunStrategy explains what a non-grid strategy means on a
// single measurement: a measurement-protocol stamp recorded in the spec
// key and manifest, not a search — searches need an axis to walk, which
// only the sweep-shaped subcommands have.
func noteSingleRunStrategy(st *comb.SweepStrategy) {
	if !st.IsGrid() {
		fmt.Fprintf(os.Stderr, "comb: strategy %s recorded as measurement protocol; searches drive sweeps (comb figure/sweep -strategy)\n", st)
	}
}

// parseFaults turns a -faults flag value into a RunSpec fault spec (nil
// when empty).
func parseFaults(s string) (*comb.FaultSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	fspec, err := comb.ParseFaults(s)
	if err != nil {
		return nil, err
	}
	return &fspec, nil
}

// warnMaskedFaults tells the user which requested faults the chosen
// transport cannot survive (the run silently masks them off).
func warnMaskedFaults(system string, fspec *comb.FaultSpec) {
	if fspec == nil {
		return
	}
	if _, masked := fspec.Masked(transport.ToleranceOf(system)); len(masked) > 0 {
		fmt.Fprintf(os.Stderr, "comb: transport %s cannot survive %s faults; ignoring them\n",
			system, strings.Join(masked, "/"))
	}
}

// cmdPingpong runs the classic microbenchmark across sizes — the
// pre-COMB view of a system that the paper's introduction argues is
// insufficient.  Since pingpong is a registered method, its points run
// through the shared engine: they parallelize across -j workers and
// persist in the on-disk result cache like any sweep point.
func cmdPingpong(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("pingpong", flag.ExitOnError)
	systems := fs.String("systems", "gm,portals", "comma-separated system list")
	reps := fs.Int("reps", 50, "round trips per point")
	eo := addEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	meter := eo.install()
	eng := sweep.DefaultEngine
	sizes := []int{8, 1024, 10_000, 100_000, 300_000}
	sysList := strings.Split(*systems, ",")
	point := func(sys string, size int) runner.Point {
		return runner.Point{Method: "pingpong", System: sys, Params: pingpong.Params{MsgSize: size, Reps: *reps}}
	}
	var pts []runner.Point
	for _, sys := range sysList {
		sys = strings.TrimSpace(sys)
		for _, size := range sizes {
			pts = append(pts, point(sys, size))
		}
	}
	err := eng.RunAll(ctx, pts)
	meter.finish()
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %12s %14s %14s\n", "system", "size (B)", "latency", "bandwidth")
	for _, sys := range sysList {
		sys = strings.TrimSpace(sys)
		for _, size := range sizes {
			res, err := eng.Run(ctx, point(sys, size))
			if err != nil {
				return err
			}
			r, ok := runner.As[*pingpong.Result](res)
			if !ok {
				return fmt.Errorf("pingpong: point returned a %T result", res.Value)
			}
			fmt.Printf("%-10s %12d %14v %11.2f MB/s\n",
				sys, size, r.Latency.Round(100*time.Nanosecond), r.BandwidthMBs)
		}
	}
	fmt.Println("\nnote: these numbers say nothing about overlap or host CPU cost —")
	fmt.Println("run `comb assess <system>` for the characterization that does.")
	return nil
}
