#!/bin/sh
# Full verification recipe: tier-1 (build + test) plus vet and the race
# detector.  Make-free on purpose — this is everything CI or a reviewer
# needs to run.
set -e
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> synctest virtual-time suites"
# The build-tagged runner/serve timeout-and-retry tests on the virtual
# clock; plain `go test ./...` skips these files entirely.
GOEXPERIMENT=synctest go test ./internal/runner ./internal/serve

echo "==> coverage ratchet"
sh scripts/covercheck.sh

echo "==> comb methods smoke"
# The CLI must list every built-in method through the registry.
go build -o /tmp/comb-verify ./cmd/comb
methods=$(/tmp/comb-verify methods)
echo "$methods"
for m in polling pww pingpong netperf collov halo; do
    if ! echo "$methods" | grep -q "^$m "; then
        echo "verify: method $m missing from 'comb methods'"
        exit 1
    fi
done
echo "==> comb selfcheck -pack all"
# The scenario oracle: every committed pack across every registered
# method × transport, zero relation violations.
/tmp/comb-verify selfcheck -pack all
rm -f /tmp/comb-verify

echo "==> comb serve smoke"
# End-to-end: serve on loopback, submit a spec, stable hash, /metrics.
sh scripts/servesmoke.sh

echo "verify: OK"
