#!/bin/sh
# Full verification recipe: tier-1 (build + test) plus vet and the race
# detector.  Make-free on purpose — this is everything CI or a reviewer
# needs to run.
set -e
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "verify: OK"
