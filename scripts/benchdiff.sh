#!/bin/sh
# Benchmark regression guard.
#
#   scripts/benchdiff.sh record   # rewrite BENCH_baseline.json from a fresh run
#   scripts/benchdiff.sh          # run the same benchmarks, flag regressions
#
# The baseline records, per benchmark, the minimum ns/op and the minimum
# allocs/op over -count runs ({"name": {"ns_op": N, "allocs_op": M}}).
# A benchmark fails the check when it is more than BENCH_TOLERANCE
# (default 20%) slower than its committed ns/op, or when its allocs/op
# exceeds the baseline by more than 0.5%.  The tiny slack absorbs
# runtime-internal jitter (goroutine stack growth, map rehash timing
# drift a figure run by a handful of allocs out of thousands); a real
# hot-path regression adds at least one allocation per simulated message,
# which lands percent-level or worse and still trips the gate.  The
# strictly-zero guarantees live in internal/perf, whose AllocsPerRun
# tests pin the core paths at exactly 0 allocs/op.  Faster results and
# new benchmarks are reported but never fail; run `record` on a quiet
# machine to refresh the baseline after intentional performance changes.
#
# ns/op wall-clock noise on shared runners is real, so treat a time
# failure as "look here", not proof; an allocs/op failure past the slack
# is proof.  Exception: the BenchmarkServe* pair crosses real HTTP, so
# its allocs/op jitters a few percent with connection handling; those
# two baselines are committed with ~8% headroom above the observed min
# instead of the exact value (keep that headroom when re-recording).
# BENCH_FILTER narrows the benchmark regex (default: the per-figure set,
# which covers the whole sweep->runner->sim stack, the serve
# hot/cold-cache service benchmarks, the DESNodes serial-vs-parallel
# engine pairs, and the multi-rank Collov/Halo method benchmarks; the parallel DESNodes baselines are machine-shaped —
# re-record on the target host, single-core runners make parallel look
# slower than serial and that is expected, the gate only guards drift
# against each benchmark's own committed number).
set -e
cd "$(dirname "$0")/.."

BASELINE=BENCH_baseline.json
TOLERANCE="${BENCH_TOLERANCE:-20}"
FILTER="${BENCH_FILTER:-^Benchmark(Fig|Serve|DESNodes|Collov|Halo)}"
BENCHTIME="${BENCH_TIME:-1x}"
COUNT="${BENCH_COUNT:-5}"

run_benches() {
    go test -run '^$' -bench "$FILTER" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . 2>&1
}

# bench_to_json <raw `go test -bench -benchmem` output>
#   -> {"name": {"ns_op": N, "allocs_op": M}, ...}
# The minimum over -count runs is the standard noise-robust estimator:
# scheduler or neighbour interference only ever slows a run down (and
# allocs/op is deterministic, so its min is just the value).
bench_to_json() {
    awk '
        /^Benchmark/ && $4 == "ns/op" {
            name = $1
            sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
            if (!(name in ns) || $3 + 0 < ns[name] + 0) ns[name] = $3
            for (i = 5; i < NF; i++)
                if ($(i + 1) == "allocs/op" && (!(name in al) || $i + 0 < al[name] + 0))
                    al[name] = $i
            if (!(name in seen)) { seen[name] = 1; order[n++] = name }
        }
        END {
            printf "{\n"
            for (i = 0; i < n; i++) {
                name = order[i]
                printf "  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s}%s\n", \
                    name, ns[name], (name in al ? al[name] : 0), (i < n-1 ? "," : "")
            }
            printf "}\n"
        }'
}

case "${1:-check}" in
record)
    echo "==> recording baseline ($FILTER, benchtime $BENCHTIME)" >&2
    run_benches | tee /dev/stderr | bench_to_json > "$BASELINE"
    echo "==> wrote $BASELINE" >&2
    ;;
check)
    [ -f "$BASELINE" ] || { echo "benchdiff: no $BASELINE; run '$0 record' first" >&2; exit 2; }
    echo "==> running benchmarks ($FILTER, benchtime $BENCHTIME)" >&2
    run_benches | bench_to_json > /tmp/bench_current.$$
    awk -v tol="$TOLERANCE" '
        function parse(line,    kv) {
            # "name": {"ns_op": N, "allocs_op": M}
            if (match(line, /"[^"]+": \{"ns_op": [0-9.]+, "allocs_op": [0-9.]+\}/)) {
                split(substr(line, RSTART, RLENGTH), kv, /": \{"ns_op": |, "allocs_op": |\}/)
                gsub(/"/, "", kv[1])
                pname = kv[1]; pns = kv[2]; pal = kv[3]
                return 1
            }
            return 0
        }
        FNR == NR { if (parse($0)) { bns[pname] = pns; bal[pname] = pal }; next }
                 { if (parse($0)) { cns[pname] = pns; cal[pname] = pal } }
        END {
            bad = 0
            for (name in cns) {
                if (!(name in bns)) {
                    printf "NEW      %-50s %12.0f ns/op %6d allocs/op (no baseline)\n", name, cns[name], cal[name]
                    continue
                }
                delta = (cns[name] - bns[name]) / bns[name] * 100
                status = "ok"
                if (delta > tol) { status = "SLOWER"; bad++ }
                else if (delta < -tol) status = "faster"
                if (cal[name] + 0 > (bal[name] + 0) * 1.005) { status = "ALLOCS"; bad++ }
                printf "%-8s %-50s %12.0f -> %12.0f ns/op (%+.1f%%)  %d -> %d allocs/op\n", \
                    status, name, bns[name], cns[name], delta, bal[name], cal[name]
            }
            for (name in bns)
                if (!(name in cns))
                    printf "GONE     %-50s (in baseline, not run)\n", name
            if (bad) {
                printf "\nbenchdiff: %d benchmark(s) regressed (>%d%% ns/op or >0.5%% allocs/op)\n", bad, tol
                exit 1
            }
            print "\nbenchdiff: OK"
        }' "$BASELINE" /tmp/bench_current.$$ || rc=$?
    rm -f /tmp/bench_current.$$
    exit "${rc:-0}"
    ;;
*)
    echo "usage: $0 [record|check]" >&2
    exit 2
    ;;
esac
