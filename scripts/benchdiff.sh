#!/bin/sh
# Benchmark regression guard.
#
#   scripts/benchdiff.sh record   # rewrite BENCH_baseline.json from a fresh run
#   scripts/benchdiff.sh          # run the same benchmarks, flag slowdowns
#
# A benchmark more than BENCH_TOLERANCE (default 20%) slower than its
# committed baseline fails the check.  Faster results and new benchmarks
# are reported but never fail; run `record` on a quiet machine to refresh
# the baseline after intentional performance changes.
#
# The comparison is sec/op only — wall-clock noise on shared runners is
# real, so treat a failure as "look here", not proof.  BENCH_FILTER
# narrows the benchmark regex (default: the per-figure set, which covers
# the whole sweep->runner->sim stack).
set -e
cd "$(dirname "$0")/.."

BASELINE=BENCH_baseline.json
TOLERANCE="${BENCH_TOLERANCE:-20}"
FILTER="${BENCH_FILTER:-^BenchmarkFig}"
BENCHTIME="${BENCH_TIME:-1x}"
COUNT="${BENCH_COUNT:-5}"

run_benches() {
    go test -run '^$' -bench "$FILTER" -benchtime "$BENCHTIME" -count "$COUNT" . 2>&1
}

# bench_to_json <raw go test -bench output> -> {"name": min_ns_op, ...}
# The minimum over -count runs is the standard noise-robust estimator:
# scheduler or neighbour interference only ever slows a run down.
bench_to_json() {
    awk '
        /^Benchmark/ && $4 == "ns/op" {
            name = $1
            sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
            if (!(name in ns) || $3 + 0 < ns[name]) ns[name] = $3
            if (!(name in seen)) { seen[name] = 1; order[n++] = name }
        }
        END {
            printf "{\n"
            for (i = 0; i < n; i++) {
                printf "  \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "")
            }
            printf "}\n"
        }'
}

case "${1:-check}" in
record)
    echo "==> recording baseline ($FILTER, benchtime $BENCHTIME)" >&2
    run_benches | tee /dev/stderr | bench_to_json > "$BASELINE"
    echo "==> wrote $BASELINE" >&2
    ;;
check)
    [ -f "$BASELINE" ] || { echo "benchdiff: no $BASELINE; run '$0 record' first" >&2; exit 2; }
    echo "==> running benchmarks ($FILTER, benchtime $BENCHTIME)" >&2
    run_benches | bench_to_json > /tmp/bench_current.$$
    awk -v tol="$TOLERANCE" '
        FNR == NR {
            if (match($0, /"[^"]+": [0-9.]+/)) {
                split(substr($0, RSTART, RLENGTH), kv, /": /)
                gsub(/"/, "", kv[1])
                base[kv[1]] = kv[2]
            }
            next
        }
        {
            if (match($0, /"[^"]+": [0-9.]+/)) {
                split(substr($0, RSTART, RLENGTH), kv, /": /)
                gsub(/"/, "", kv[1])
                cur[kv[1]] = kv[2]
            }
        }
        END {
            bad = 0
            for (name in cur) {
                if (!(name in base)) {
                    printf "NEW      %-50s %12.0f ns/op (no baseline)\n", name, cur[name]
                    continue
                }
                delta = (cur[name] - base[name]) / base[name] * 100
                status = "ok"
                if (delta > tol) { status = "SLOWER"; bad++ }
                else if (delta < -tol) status = "faster"
                printf "%-8s %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n", status, name, base[name], cur[name], delta
            }
            for (name in base)
                if (!(name in cur))
                    printf "GONE     %-50s (in baseline, not run)\n", name
            if (bad) {
                printf "\nbenchdiff: %d benchmark(s) regressed more than %d%%\n", bad, tol
                exit 1
            }
            print "\nbenchdiff: OK"
        }' "$BASELINE" /tmp/bench_current.$$ || rc=$?
    rm -f /tmp/bench_current.$$
    exit "${rc:-0}"
    ;;
*)
    echo "usage: $0 [record|check]" >&2
    exit 2
    ;;
esac
