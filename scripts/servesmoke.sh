#!/bin/sh
# Serve smoke test: boot `comb serve` on a loopback port, push one spec
# document through `comb submit`, prove the result hash is stable across
# a resubmission (persistent-store hit), and scrape /metrics.  POSIX sh
# + stdlib only; run by scripts/verify.sh and the CI serve job.
set -e
cd "$(dirname "$0")/.."

BIN=${COMB_BIN:-/tmp/comb-servesmoke}
go build -o "$BIN" ./cmd/comb

tmp=$(mktemp -d)
port=${COMB_SMOKE_PORT:-18423}
addr="http://127.0.0.1:$port"

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp" "$BIN"
}
trap cleanup EXIT

cat > "$tmp/point.json" <<'EOF'
{"specVersion": 1, "method": "polling", "system": "ideal",
 "polling": {"PollInterval": 1000, "WorkTotal": 5000000}}
EOF

"$BIN" serve -addr "127.0.0.1:$port" -cache-dir "$tmp/cache" \
    -jobs-dir "$tmp/jobs" -quiet &
pid=$!

# Wait for the listener.
up=0
i=0
while [ "$i" -lt 50 ]; do
    if "$BIN" metrics -addr "$addr" >/dev/null 2>&1; then
        up=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ "$up" -ne 1 ]; then
    echo "servesmoke: server did not come up on $addr"
    exit 1
fi

out1=$("$BIN" submit -addr "$addr" -spec "$tmp/point.json" 2>/dev/null)
hash1=$(echo "$out1" | awk '/^result hash/ {print $3}')
src1=$(echo "$out1" | awk '/^source/ {print $2}')
if [ -z "$hash1" ]; then
    echo "servesmoke: no result hash in submit output:"
    echo "$out1"
    exit 1
fi

out2=$("$BIN" submit -addr "$addr" -spec "$tmp/point.json" 2>/dev/null)
hash2=$(echo "$out2" | awk '/^result hash/ {print $3}')
src2=$(echo "$out2" | awk '/^source/ {print $2}')

if [ "$hash1" != "$hash2" ]; then
    echo "servesmoke: hash drifted across resubmission: $hash1 != $hash2"
    exit 1
fi
if [ "$src1" != "run" ] || [ "$src2" != "cache" ]; then
    echo "servesmoke: sources were $src1/$src2, want run/cache"
    exit 1
fi

metrics=$("$BIN" metrics -addr "$addr")
for want in 'comb_serve_requests_total' \
    'comb_serve_job_source_total{source="run"}' \
    'comb_serve_job_source_total{source="cache"}'; do
    if ! echo "$metrics" | grep -qF "$want"; then
        echo "servesmoke: /metrics missing $want"
        exit 1
    fi
done

# Per-job artifacts landed on disk.
if ! ls "$tmp"/jobs/*/job.json >/dev/null 2>&1; then
    echo "servesmoke: no per-job artifacts under $tmp/jobs"
    exit 1
fi

echo "servesmoke: OK (hash $hash1, sources $src1 then $src2)"
