#!/bin/sh
# Documentation hygiene gate, run by the CI docs job:
#
#   1. gofmt -l is empty (formatting is documentation too),
#   2. every package in the module has a package comment,
#   3. `go doc` renders every package without error,
#   4. every relative link in the markdown docs points at a file that
#      exists.
#
# Stdlib + POSIX sh only; exits nonzero on the first failing section.
set -e
cd "$(dirname "$0")/.."

fail=0

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    fail=1
fi

echo "==> package comments"
# Synopsis is empty exactly when the package has no doc comment.
missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)
if [ -n "$missing" ]; then
    echo "packages without a package comment:"
    echo "$missing"
    fail=1
fi

echo "==> go doc renders"
for pkg in $(go list ./...); do
    if ! go doc "$pkg" >/dev/null 2>&1; then
        echo "go doc $pkg failed"
        fail=1
    fi
done

echo "==> method docs"
# Every built-in benchmark method must be documented in the extension
# guide (the registry makes adding one cheap; documenting it stays part
# of the contract).
for m in polling pww pingpong netperf collov halo; do
    if ! grep -q "$m" docs/EXTENDING.md; then
        echo "docs/EXTENDING.md does not mention method: $m"
        fail=1
    fi
done

echo "==> docs/ file references"
# Any mention of a docs/<name>.md file — markdown prose, Go doc
# comments, CLI usage strings, scripts — must name a file that exists.
# The markdown link check below only sees [text](target) links; this
# catches the bare "see docs/<name>.md" form too, so a doc rename or
# deletion that leaves references behind fails here.  A leading
# non-path character keeps external paths (vendor/docs/x.md) out.
for ref in $(grep -rhoE '(^|[^/A-Za-z0-9_.-])docs/[A-Za-z0-9_.-]+\.md' \
    --include='*.go' --include='*.md' --include='*.sh' . |
    sed 's/^[^d]//' | sort -u); do
    if [ ! -f "$ref" ]; then
        echo "reference to nonexistent $ref"
        fail=1
    fi
done

echo "==> markdown relative links"
for md in *.md docs/*.md; do
    [ -f "$md" ] || continue
    dir=$(dirname "$md")
    # Inline links only: [text](target). Skip URLs and pure anchors.
    # Fenced code blocks are stripped first: Go index/generic syntax
    # (`DecodeJSON[T](b)`) otherwise reads as a link.
    for target in $(sed '/^```/,/^```/d' "$md" | grep -o '](\([^)]*\))' |
        sed 's/^](//; s/)$//; s/#.*//' |
        grep -v '^$' | grep -v '^[a-z+]*://' | sort -u); do
        if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
            echo "$md: broken relative link: $target"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "doccheck: FAIL"
    exit 1
fi
echo "doccheck: OK"
