#!/bin/sh
# Coverage ratchet for the correctness-critical packages: the oracle
# layers (invariant, scenario, selfcheck) and the fault injector the
# oracles lean on.  Each floor sits just under the coverage measured
# when the ratchet was installed — the check only ever fails when
# coverage REGRESSES, and a PR that meaningfully raises coverage should
# raise the floor with it (that is the ratchet).
#
# Floors are statement coverage from `go test -cover`, per package.
set -e
cd "$(dirname "$0")/.."

# package floor%  (measured at install time: 67.5 84.3 51.7 89.0;
# sweep/strategy/stats added with the strategy layer at 67.7 95.5 99.2;
# sim/cluster added with the parallel engine at 92.4 82.1, which also
# lifted invariant to 89.8 (partitioned-checker suite) — the window
# scheduler and partitioned fabric are correctness-critical and must
# stay directly unit-tested, not just exercised through the facade;
# mpi added with the N-rank communicator at 87.6 — the tree collectives
# and nonblocking-collective state machine back every multi-rank method)
floors='
comb/internal/mpi 80
comb/internal/invariant 85
comb/internal/faultinject 80
comb/internal/selfcheck 50
comb/internal/scenario 85
comb/internal/sweep 65
comb/internal/strategy 90
comb/internal/stats 95
comb/internal/sim 90
comb/internal/cluster 80
'

pkgs=$(echo "$floors" | awk 'NF {print $1}')

echo "==> go test -cover (ratcheted packages)"
out=$(go test -cover $pkgs)
echo "$out"

fail=0
echo "$floors" | while read -r pkg floor; do
    [ -z "$pkg" ] && continue
    pct=$(echo "$out" | awk -v p="$pkg" '$2 == p {
        for (i = 1; i <= NF; i++) if ($i ~ /%$/) { sub(/%/, "", $i); print $i }
    }')
    if [ -z "$pct" ]; then
        echo "covercheck: no coverage reported for $pkg"
        exit 1
    fi
    if awk -v got="$pct" -v want="$floor" 'BEGIN { exit !(got < want) }'; then
        echo "covercheck: $pkg coverage ${pct}% fell below the ${floor}% floor"
        exit 1
    fi
    echo "covercheck: $pkg ${pct}% >= ${floor}%"
done || fail=1

if [ "$fail" -ne 0 ]; then
    echo "covercheck: FAIL — coverage regressed; add tests or (only for"
    echo "covercheck: deliberate removals) lower the floor in this script"
    exit 1
fi
echo "covercheck: OK"
