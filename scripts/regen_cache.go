//go:build ignore

// Regenerate results/cache entries under the current cache schema.
//
// Usage: go run scripts/regen_cache.go [-dir results/cache]
//
// It reads every *.json entry in the cache directory, reconstructs each
// point from the entry's key (accepting both the schema-1 key layout,
// "system/size/..." with a method implied by the result payload, and the
// current "method/system/..." layout), deletes the old files, and re-runs
// every point through a disk-backed engine so the directory ends up
// holding only current-schema entries.  The simulation is deterministic,
// so the regenerated values are identical to the originals.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"comb/internal/core"
	"comb/internal/runner"

	_ "comb/internal/method/all"
)

func main() {
	dir := flag.String("dir", runner.DefaultCacheDir, "cache directory to regenerate")
	flag.Parse()

	files, err := filepath.Glob(filepath.Join(*dir, "*.json"))
	if err != nil || len(files) == 0 {
		log.Fatalf("no cache entries under %s: %v", *dir, err)
	}

	var points []runner.Point
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			log.Fatal(err)
		}
		var entry struct {
			Schema int    `json:"schema"`
			Key    string `json:"key"`
		}
		if err := json.Unmarshal(b, &entry); err != nil {
			log.Fatalf("%s: %v", f, err)
		}
		pt, err := pointFromKey(entry.Key)
		if err != nil {
			log.Fatalf("%s: %v", f, err)
		}
		points = append(points, pt)
		if err := os.Remove(f); err != nil {
			log.Fatal(err)
		}
	}

	eng := runner.New(runner.Config{Disk: runner.Open(*dir)})
	if err := eng.RunAll(context.Background(), points); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regenerated %d entries under %s (schema %d)\n", len(points), *dir, runner.SchemaVersion)
}

// pointFromKey reverses the cache-key layouts.  Schema-1 keys had no
// method segment: polling was "system/size/poll/work" and PWW
// "system/size/workinterval/reps/testinwork".  Current keys prepend the
// method name.
func pointFromKey(key string) (runner.Point, error) {
	seg := strings.Split(key, "/")
	switch seg[0] {
	case "polling", "pww":
		seg = seg[1:]
	}
	ints := func(idx ...int) ([]int64, error) {
		out := make([]int64, len(idx))
		for i, j := range idx {
			v, err := strconv.ParseInt(seg[j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("key %q segment %d: %v", key, j, err)
			}
			out[i] = v
		}
		return out, nil
	}
	switch len(seg) {
	case 4: // polling: system/size/poll/work
		v, err := ints(1, 2, 3)
		if err != nil {
			return runner.Point{}, err
		}
		return runner.Point{Method: "polling", System: seg[0], Params: core.PollingConfig{
			Config:       core.Config{MsgSize: int(v[0])},
			PollInterval: v[1],
			WorkTotal:    v[2],
		}}, nil
	case 5: // pww: system/size/workinterval/reps/testinwork
		v, err := ints(1, 2, 3)
		if err != nil {
			return runner.Point{}, err
		}
		tiw, err := strconv.ParseBool(seg[4])
		if err != nil {
			return runner.Point{}, fmt.Errorf("key %q: %v", key, err)
		}
		return runner.Point{Method: "pww", System: seg[0], Params: core.PWWConfig{
			Config:       core.Config{MsgSize: int(v[0])},
			WorkInterval: v[1],
			Reps:         int(v[2]),
			TestInWork:   tiw,
		}}, nil
	}
	return runner.Point{}, fmt.Errorf("unrecognized cache key %q", key)
}
