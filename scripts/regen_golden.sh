#!/bin/sh
# Regenerate the committed golden figure CSVs under results/.
#
# The golden CI job (COMB_GOLDEN=1 TestGoldenFigures) rebuilds every
# results/figNN.csv from scratch and demands byte identity, so any
# intentional simulator change that moves a number must re-commit the
# goldens.  This is the one blessed path for doing that:
#
#   scripts/regen_golden.sh        # rebuild every figure into results/
#   git diff results/              # review every changed number
#   git add results/ && git commit # commit alongside the change itself
#
# The rebuild reuses results/cache, so only points whose spec keys
# changed actually re-simulate; pass -no-cache through to force a full
# cold rebuild (minutes of CPU):
#
#   scripts/regen_golden.sh -no-cache
set -e
cd "$(dirname "$0")/.."

go build -o /tmp/comb-regen ./cmd/comb
trap 'rm -f /tmp/comb-regen' EXIT

/tmp/comb-regen figure -csv results -chart=false "$@" all

echo
echo "regen_golden: results/ rewritten; review with 'git diff results/'"
echo "regen_golden: a clean diff means the change moved no figure"
