package comb

import (
	"strings"
	"testing"
)

func TestSystems(t *testing.T) {
	got := Systems()
	want := []string{"emp", "gm", "ideal", "portals", "tcp"}
	if len(got) != len(want) {
		t.Fatalf("Systems() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Systems() = %v, want %v", got, want)
		}
	}
}

func TestRunPollingFacade(t *testing.T) {
	out, err := runPolling("gm", 0, PollingConfig{
		Config:       Config{MsgSize: 50_000},
		PollInterval: 50_000,
		WorkTotal:    10_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := out.Polling
	if res.BandwidthMBs <= 0 || res.Availability <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if _, err := runPolling("nosuch", 0, PollingConfig{PollInterval: 1}); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestRunPWWFacade(t *testing.T) {
	out, err := runPWW("portals", 0, PWWConfig{
		Config:       Config{MsgSize: 50_000},
		WorkInterval: 500_000,
		Reps:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := out.PWW
	if res.BytesReceived != 5*int64(res.BatchSize)*50_000 {
		t.Fatalf("bytes wrong: %+v", res)
	}
	if _, err := runPWW("nosuch", 0, PWWConfig{WorkInterval: 1}); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestFiguresFacade(t *testing.T) {
	if len(Figures()) != 15 {
		t.Fatalf("Figures() has %d entries, want 15", len(Figures()))
	}
	if _, err := BuildFigure("2", false); err == nil {
		t.Fatal("figure 2 is a diagram, not a result")
	}
	tbl, err := BuildFigure("13", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Title, "Figure 13") {
		t.Fatalf("title %q", tbl.Title)
	}
	if len(tbl.Series) != 2 {
		t.Fatalf("figure 13 needs the two work-time series, got %d", len(tbl.Series))
	}
}
