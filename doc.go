// Package comb is a reproduction of COMB, the Communication Offload
// MPI-based Benchmark (Lawry, Wilson, Maccabe, Brightwell — CLUSTER 2002):
// a portable benchmark suite that measures how well a messaging system
// overlaps MPI communication with host computation.
//
// Because Go has no MPI and the paper's Myrinet testbed is long gone, the
// whole substrate is reproduced as a deterministic discrete-event
// simulation: a two-node cluster (preemptive priority CPUs, a switched
// fabric with per-packet costs) carrying a mini-MPI library over
// transports that mirror the paper's two systems — MPICH/GM (OS-bypass,
// no application offload) and kernel-based Portals 3.0 (interrupt-driven,
// application offload).  See DESIGN.md for the full inventory and
// EXPERIMENTS.md for paper-versus-measured results.
//
// Quick use — one measurement goes through Run, the single context-aware
// entry point:
//
//	res, err := comb.Run(ctx, comb.RunSpec{
//		Method: comb.MethodPolling,
//		System: "gm",
//		Polling: &comb.PollingConfig{
//			Config:       comb.Config{MsgSize: 100_000},
//			PollInterval: 100_000,
//			WorkTotal:    25_000_000,
//		},
//	})
//	fmt.Println(res.Polling) // bandwidth + CPU availability
//
// RunSpec selects the method (inferred when exactly one config pointer is
// set), system, processors per node, and optional packet tracing;
// RunResult bundles the method result, hardware counters, and trace.  A
// cancelled ctx tears the simulation down mid-run.  The former
// RunPolling*/RunPWW* wrappers have been removed — every spelling they
// offered is a RunSpec field.  The same spec is also the wire format: a
// schema-versioned JSON document ("specVersion": 1) accepted by
// `comb run -spec file.json` and by the `comb serve` HTTP API.
//
// Regenerating a paper figure:
//
//	tbl, err := comb.BuildFigure("11", false)
//	fmt.Print(tbl.Text())
//
// Figure sweeps execute on internal/runner's parallel engine (bounded
// worker pool, in-memory memo plus optional on-disk cache); the
// simulation's determinism makes parallel builds byte-identical to serial
// ones.  BuildFigureContext is the cancellable variant.
//
// The cmd/comb command wraps all of this for the terminal, adding -j
// (parallelism), a persistent results/cache/ tier, and `comb cache`
// management.
package comb
