// Package comb is a reproduction of COMB, the Communication Offload
// MPI-based Benchmark (Lawry, Wilson, Maccabe, Brightwell — CLUSTER 2002):
// a portable benchmark suite that measures how well a messaging system
// overlaps MPI communication with host computation.
//
// Because Go has no MPI and the paper's Myrinet testbed is long gone, the
// whole substrate is reproduced as a deterministic discrete-event
// simulation: a two-node cluster (preemptive priority CPUs, a switched
// fabric with per-packet costs) carrying a mini-MPI library over
// transports that mirror the paper's two systems — MPICH/GM (OS-bypass,
// no application offload) and kernel-based Portals 3.0 (interrupt-driven,
// application offload).  See DESIGN.md for the full inventory and
// EXPERIMENTS.md for paper-versus-measured results.
//
// Quick use:
//
//	res, err := comb.RunPolling("gm", comb.PollingConfig{
//		Config:       comb.Config{MsgSize: 100_000},
//		PollInterval: 100_000,
//		WorkTotal:    25_000_000,
//	})
//	fmt.Println(res) // bandwidth + CPU availability
//
// or regenerate a paper figure:
//
//	tbl, err := comb.BuildFigure("11", false)
//	fmt.Print(tbl.Text())
//
// The cmd/comb command wraps all of this for the terminal.
package comb
