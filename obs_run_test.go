package comb_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comb"
	"comb/internal/obs"
)

// obsRunSpec is the small, fully deterministic observed run the golden
// and round-trip tests share: fixed seed, ideal transport, spans and
// packet trace on.
func obsRunSpec() comb.RunSpec {
	return comb.RunSpec{
		Method:   comb.MethodPWW,
		System:   "ideal",
		Seed:     7,
		ObsCap:   -1,
		TraceCap: 64,
		PWW: &comb.PWWConfig{
			Config:       comb.Config{MsgSize: 10_000},
			WorkInterval: 200_000,
			Reps:         3,
		},
	}
}

// TestChromeExportGolden locks down the Chrome trace-event export
// byte-for-byte: the simulation is deterministic, so the exported JSON
// for a fixed spec must never drift.  Regenerate the goldens with
// COMB_GOLDEN=1 after reviewing an intended format change.  The
// TestInWork variant (paper §4.3) exercises the extra MPI_Test phase
// span in the export.
func TestChromeExportGolden(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		spec   comb.RunSpec
	}{
		{"pww", "pww_ideal_chrome.json", obsRunSpec()},
		// On the ideal transport MPI_Test is free and traceless, so the
		// §4.3 variant is pinned on GM, where the early Test advances the
		// rendezvous and genuinely reshapes the trace (Fig 17).
		{"pww-testinwork", "pww_testinwork_gm_chrome.json", func() comb.RunSpec {
			spec := obsRunSpec()
			spec.System = "gm"
			cfg := *spec.PWW
			cfg.TestInWork = true
			spec.PWW = &cfg
			return spec
		}()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			run := func() []byte {
				res, err := comb.Run(context.Background(), c.spec)
				if err != nil {
					t.Fatal(err)
				}
				if res.Obs == nil {
					t.Fatal("ObsCap set but RunResult.Obs is nil")
				}
				var buf bytes.Buffer
				if err := obs.WriteChromeTrace(&buf, res.Obs); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			got := run()
			if !bytes.Equal(got, run()) {
				t.Fatal("two identical runs exported different Chrome traces")
			}

			golden := filepath.Join("testdata", c.golden)
			if os.Getenv("COMB_GOLDEN") == "1" {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("regenerated %s (%d bytes)", golden, len(got))
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (regenerate with COMB_GOLDEN=1): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("chrome export drifted from %s (%d bytes got, %d want); regenerate with COMB_GOLDEN=1 if intended",
					golden, len(got), len(want))
			}
		})
	}
}

// TestObservedRunArtifacts sanity-checks what one observed run carries:
// phase and per-message spans, packet instants, and metrics agreeing
// with the hardware counters.
func TestObservedRunArtifacts(t *testing.T) {
	res, err := comb.Run(context.Background(), obsRunSpec())
	if err != nil {
		t.Fatal(err)
	}
	cats := map[string]int{}
	phases := map[string]int{}
	for _, s := range res.Obs.Spans {
		cats[s.Cat]++
		if s.Cat == obs.CatPhase {
			phases[s.Name]++
		}
	}
	if cats[obs.CatPhase] == 0 || cats[obs.CatMPI] == 0 {
		t.Fatalf("span categories: %v", cats)
	}
	for _, want := range []string{"dry", "post", "work", "wait"} {
		if phases[want] == 0 {
			t.Errorf("no %q phase spans (have %v)", want, phases)
		}
	}
	if len(res.Obs.Instants) == 0 {
		t.Error("TraceCap set but no packet instants in the capture")
	}

	var prom strings.Builder
	if err := res.Metrics.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`comb_messages_completed_total{kind="send"}`,
		`comb_packets_total{fate="delivered"}`,
		"comb_wire_bytes_total",
		"comb_phase_seconds_bucket",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("metrics exposition lacks %s", want)
		}
	}
	snap := res.Metrics.Snapshot()
	byName := map[string]int64{}
	for _, c := range snap.Counters {
		byName[c.Name] = c.Value
	}
	if byName[`comb_messages_completed_total{kind="send"}`] != byName[`comb_messages_completed_total{kind="recv"}`] {
		t.Errorf("completed sends %d != completed recvs %d",
			byName[`comb_messages_completed_total{kind="send"}`],
			byName[`comb_messages_completed_total{kind="recv"}`])
	}
	if got := byName["comb_wire_bytes_total"]; got != res.Stats.WireBytes {
		t.Errorf("comb_wire_bytes_total %d != Stats.WireBytes %d", got, res.Stats.WireBytes)
	}
}

// TestManifestRoundTrip saves a run's manifest, reloads it, replays it,
// and demands the identical result hash — the reproducibility contract
// `comb replay` enforces.
func TestManifestRoundTrip(t *testing.T) {
	ctx := context.Background()
	res, err := comb.Run(ctx, obsRunSpec())
	if err != nil {
		t.Fatal(err)
	}
	mf := res.Manifest
	if mf == nil || mf.ResultHash == "" {
		t.Fatalf("manifest: %+v", mf)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := mf.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := obs.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := comb.Replay(ctx, loaded)
	if err != nil {
		t.Fatalf("replay must verify: %v", err)
	}
	if replayed.Manifest.ResultHash != mf.ResultHash {
		t.Errorf("hash drift: %s vs %s", replayed.Manifest.ResultHash, mf.ResultHash)
	}

	// A corrupted hash must be detected.
	loaded.ResultHash = "sha256:0000"
	if _, err := comb.Replay(ctx, loaded); err == nil {
		t.Error("replay must reject a manifest whose hash does not match")
	}
}

// TestManifestRecordsMaskedFaults checks the provenance of a degraded
// run: the requested fault string survives verbatim, and the faults the
// transport cannot tolerate are listed as masked.
func TestManifestRecordsMaskedFaults(t *testing.T) {
	fs, err := comb.ParseFaults("drop=0.01")
	if err != nil {
		t.Fatal(err)
	}
	spec := obsRunSpec()
	spec.System = "gm" // gm has no loss tolerance: drop must be masked
	spec.Faults = &fs
	res, err := comb.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	mf := res.Manifest
	if !strings.Contains(mf.Faults, "drop=0.01") {
		t.Errorf("manifest faults = %q", mf.Faults)
	}
	masked := strings.Join(mf.MaskedFaults, ",")
	if !strings.Contains(masked, "drop") {
		t.Errorf("masked faults = %q, want drop listed", masked)
	}
}
